//! The kinematic Dubins car model.

/// Pose of the vehicle on the plane.
///
/// Following the paper's convention (Figure 3a), the heading `theta` is the
/// *clockwise* angle from the positive y-axis, so the kinematics are
/// `ẋ = V sin θ`, `ẏ = V cos θ`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    /// Vehicle x position.
    pub x: f64,
    /// Vehicle y position.
    pub y: f64,
    /// Heading, measured clockwise from the +y axis, in radians.
    pub theta: f64,
}

/// The kinematic Dubins car of Section 4.1.1.
///
/// The model has a constant longitudinal speed `V` and is steered by the turn
/// rate `u` produced by the controller:
///
/// ```text
/// ẋ = V sin θ,   ẏ = V cos θ,   θ̇ = u
/// ```
///
/// # Examples
///
/// ```
/// use nncps_dubins::DubinsCar;
///
/// let car = DubinsCar::new(1.0);
/// // Heading 0 means "along +y"; with zero steering the car moves straight up.
/// let next = car.step([0.0, 0.0, 0.0], 0.0, 0.1);
/// assert!(next[0].abs() < 1e-12);
/// assert!((next[1] - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DubinsCar {
    speed: f64,
}

impl DubinsCar {
    /// Creates a car with constant longitudinal speed `speed`.
    ///
    /// # Panics
    ///
    /// Panics if the speed is not strictly positive.
    pub fn new(speed: f64) -> Self {
        assert!(speed > 0.0, "vehicle speed must be positive");
        DubinsCar { speed }
    }

    /// The constant longitudinal speed `V`.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Time derivative of the state `[x, y, θ]` for steering input `u`.
    pub fn derivative(&self, state: [f64; 3], steering: f64) -> [f64; 3] {
        let [_, _, theta] = state;
        [self.speed * theta.sin(), self.speed * theta.cos(), steering]
    }

    /// Advances the state by `dt` using one classic RK4 step with the steering
    /// input held constant over the step (zero-order hold).
    pub fn step(&self, state: [f64; 3], steering: f64, dt: f64) -> [f64; 3] {
        let add =
            |a: [f64; 3], s: f64, b: [f64; 3]| [a[0] + s * b[0], a[1] + s * b[1], a[2] + s * b[2]];
        let k1 = self.derivative(state, steering);
        let k2 = self.derivative(add(state, dt / 2.0, k1), steering);
        let k3 = self.derivative(add(state, dt / 2.0, k2), steering);
        let k4 = self.derivative(add(state, dt, k3), steering);
        [
            state[0] + dt / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]),
            state[1] + dt / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]),
            state[2] + dt / 6.0 * (k1[2] + 2.0 * k2[2] + 2.0 * k3[2] + k4[2]),
        ]
    }

    /// Convenience accessor converting a raw state array into a [`Pose`].
    pub fn pose(state: [f64; 3]) -> Pose {
        Pose {
            x: state[0],
            y: state[1],
            theta: state[2],
        }
    }
}

impl Default for DubinsCar {
    fn default() -> Self {
        DubinsCar::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_follows_paper_convention() {
        let car = DubinsCar::new(2.0);
        // Heading pi/2 (clockwise from +y) points along +x.
        let d = car.derivative([0.0, 0.0, std::f64::consts::FRAC_PI_2], 0.3);
        assert!((d[0] - 2.0).abs() < 1e-12);
        assert!(d[1].abs() < 1e-12);
        assert!((d[2] - 0.3).abs() < 1e-15);
        assert_eq!(car.speed(), 2.0);
    }

    #[test]
    fn straight_motion_with_zero_steering() {
        let car = DubinsCar::default();
        let mut state = [0.0, 0.0, 0.0];
        for _ in 0..100 {
            state = car.step(state, 0.0, 0.01);
        }
        assert!(state[0].abs() < 1e-9);
        assert!((state[1] - 1.0).abs() < 1e-9);
        assert!(state[2].abs() < 1e-12);
    }

    #[test]
    fn constant_steering_turns_in_a_circle() {
        // With u = const the car traces a circle of radius V/u; after time
        // 2*pi/u it returns to the start.
        let car = DubinsCar::new(1.0);
        let u = 0.5;
        let period = 2.0 * std::f64::consts::PI / u;
        let steps = 5000;
        let dt = period / steps as f64;
        let mut state = [0.0, 0.0, 0.0];
        let mut max_radius: f64 = 0.0;
        for _ in 0..steps {
            state = car.step(state, u, dt);
            let r = (state[0] * state[0] + state[1] * state[1]).sqrt();
            max_radius = max_radius.max(r);
        }
        assert!(state[0].abs() < 1e-3);
        assert!(state[1].abs() < 1e-3);
        assert!((state[2] - 2.0 * std::f64::consts::PI).abs() < 1e-6);
        // Diameter of the traced circle is 2 V / u = 4.
        assert!((max_radius - 4.0).abs() < 1e-2);
    }

    #[test]
    fn pose_conversion() {
        let p = DubinsCar::pose([1.0, 2.0, 0.5]);
        assert_eq!(
            p,
            Pose {
                x: 1.0,
                y: 2.0,
                theta: 0.5
            }
        );
        assert_eq!(Pose::default().x, 0.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn non_positive_speed_panics() {
        let _ = DubinsCar::new(0.0);
    }
}
