//! Piecewise-linear target paths and the path-following error computation.

/// Path-following errors of a vehicle pose with respect to a target path
/// (Section 4.1.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathErrors {
    /// Signed distance error `d_err`: negative when the vehicle is to the
    /// right of the path, positive when it is to the left.
    pub distance: f64,
    /// Angle error `θ_err = θ_r − θ_v`.
    pub angle: f64,
    /// The closest point `(x_p, y_p)` on the path.
    pub closest_point: (f64, f64),
    /// Orientation `θ_r` of the path tangent at the closest point, measured
    /// clockwise from the +y axis like the vehicle heading.
    pub tangent_angle: f64,
    /// Index of the path segment containing the closest point.
    pub segment: usize,
}

/// A piecewise-linear target path on the plane.
///
/// # Examples
///
/// ```
/// use nncps_dubins::Path;
///
/// // A straight path up the y-axis.
/// let path = Path::new(vec![(0.0, 0.0), (0.0, 100.0)]);
/// // A vehicle at x = 2 heading along +y is 2 to the *left*? No: the paper's
/// // convention makes positive x (right of the path) a negative error.
/// let errors = path.errors(2.0, 10.0, 0.0);
/// assert!((errors.distance + 2.0).abs() < 1e-12);
/// assert!(errors.angle.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    waypoints: Vec<(f64, f64)>,
}

impl Path {
    /// Creates a path through the given waypoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two waypoints are given or two consecutive
    /// waypoints coincide.
    pub fn new(waypoints: Vec<(f64, f64)>) -> Self {
        assert!(waypoints.len() >= 2, "a path needs at least two waypoints");
        for pair in waypoints.windows(2) {
            let dx = pair[1].0 - pair[0].0;
            let dy = pair[1].1 - pair[0].1;
            assert!(
                dx.hypot(dy) > 1e-12,
                "consecutive waypoints must be distinct"
            );
        }
        Path { waypoints }
    }

    /// A straight-line path of the given length starting at the origin with
    /// tangent orientation `theta_r` (clockwise from +y) — the configuration
    /// used for all the verification experiments.
    pub fn straight_line(theta_r: f64, length: f64) -> Self {
        Path::new(vec![
            (0.0, 0.0),
            (length * theta_r.sin(), length * theta_r.cos()),
        ])
    }

    /// The piecewise-linear training path used for the policy search, shaped
    /// like the blue reference of Figure 4 in the paper (an S-shaped route of
    /// a few hundred meters; the exact waypoints are not published, so this is
    /// a representative reconstruction at the same scale).
    pub fn figure4_path() -> Self {
        Path::new(vec![
            (0.0, 0.0),
            (0.0, 30.0),
            (20.0, 55.0),
            (50.0, 70.0),
            (80.0, 70.0),
            (105.0, 85.0),
            (115.0, 100.0),
        ])
    }

    /// The waypoints of the path.
    pub fn waypoints(&self) -> &[(f64, f64)] {
        &self.waypoints
    }

    /// First waypoint.
    pub fn start(&self) -> (f64, f64) {
        self.waypoints[0]
    }

    /// Last waypoint.
    pub fn end(&self) -> (f64, f64) {
        *self.waypoints.last().expect("path has waypoints")
    }

    /// Total arc length of the path.
    pub fn length(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| (w[1].0 - w[0].0).hypot(w[1].1 - w[0].1))
            .sum()
    }

    /// Number of line segments.
    pub fn num_segments(&self) -> usize {
        self.waypoints.len() - 1
    }

    /// Computes the path-following errors for a vehicle at `(x, y)` with
    /// heading `theta` (clockwise from +y).
    pub fn errors(&self, x: f64, y: f64, theta: f64) -> PathErrors {
        let mut best: Option<PathErrors> = None;
        let mut best_distance = f64::INFINITY;
        for (segment, pair) in self.waypoints.windows(2).enumerate() {
            let (ax, ay) = pair[0];
            let (bx, by) = pair[1];
            let dx = bx - ax;
            let dy = by - ay;
            let len_sq = dx * dx + dy * dy;
            // Project the vehicle position onto the segment.
            let t = (((x - ax) * dx + (y - ay) * dy) / len_sq).clamp(0.0, 1.0);
            let px = ax + t * dx;
            let py = ay + t * dy;
            let dist = (x - px).hypot(y - py);
            if dist < best_distance {
                best_distance = dist;
                // Tangent orientation measured clockwise from +y.
                let theta_r = dx.atan2(dy);
                // Signed distance: negative when the vehicle is to the right
                // of the tangent direction (paper convention, Eq. 12).
                let signed = -(x - px) * theta_r.cos() + (y - py) * theta_r.sin();
                best = Some(PathErrors {
                    distance: signed,
                    angle: wrap_angle(theta_r - theta),
                    closest_point: (px, py),
                    tangent_angle: theta_r,
                    segment,
                });
            }
        }
        best.expect("path has at least one segment")
    }
}

/// Wraps an angle to `(-π, π]`.
fn wrap_angle(angle: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = angle % two_pi;
    if a <= -std::f64::consts::PI {
        a += two_pi;
    } else if a > std::f64::consts::PI {
        a -= two_pi;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn straight_vertical_path_errors() {
        let path = Path::new(vec![(0.0, 0.0), (0.0, 100.0)]);
        // Vehicle to the right of the path (positive x): negative distance.
        let e = path.errors(2.0, 50.0, 0.0);
        assert!((e.distance + 2.0).abs() < 1e-12);
        assert!(e.angle.abs() < 1e-12);
        assert_eq!(e.closest_point, (2.0_f64.mul_add(0.0, 0.0), 50.0));
        assert!(e.tangent_angle.abs() < 1e-12);
        // Vehicle to the left of the path: positive distance.
        let e = path.errors(-3.0, 20.0, 0.1);
        assert!((e.distance - 3.0).abs() < 1e-12);
        assert!((e.angle + 0.1).abs() < 1e-12);
    }

    #[test]
    fn straight_line_constructor_matches_orientation() {
        let theta_r = std::f64::consts::FRAC_PI_4;
        let path = Path::straight_line(theta_r, 10.0);
        let e = path.errors(0.0, 0.0, theta_r);
        assert!(e.distance.abs() < 1e-12);
        assert!(e.angle.abs() < 1e-12);
        assert!((e.tangent_angle - theta_r).abs() < 1e-12);
        assert!((path.length() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn horizontal_path_sign_convention() {
        // Path along +x: theta_r = pi/2. A vehicle "above" the path (greater
        // y) is to its left, so the distance error is positive.
        let path = Path::new(vec![(0.0, 0.0), (10.0, 0.0)]);
        let e = path.errors(5.0, 1.0, std::f64::consts::FRAC_PI_2);
        assert!((e.tangent_angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((e.distance - 1.0).abs() < 1e-12);
        let below = path.errors(5.0, -1.0, std::f64::consts::FRAC_PI_2);
        assert!((below.distance + 1.0).abs() < 1e-12);
    }

    #[test]
    fn closest_point_clamps_to_segment_ends() {
        let path = Path::new(vec![(0.0, 0.0), (0.0, 10.0)]);
        let e = path.errors(1.0, -5.0, 0.0);
        assert_eq!(e.closest_point, (0.0, 0.0));
        let e = path.errors(1.0, 15.0, 0.0);
        assert_eq!(e.closest_point, (0.0, 10.0));
    }

    #[test]
    fn multi_segment_path_selects_nearest_segment() {
        let path = Path::new(vec![(0.0, 0.0), (0.0, 10.0), (10.0, 10.0)]);
        assert_eq!(path.num_segments(), 2);
        let near_first = path.errors(1.0, 3.0, 0.0);
        assert_eq!(near_first.segment, 0);
        let near_second = path.errors(5.0, 11.0, 0.0);
        assert_eq!(near_second.segment, 1);
        assert!((path.length() - 20.0).abs() < 1e-12);
        assert_eq!(path.start(), (0.0, 0.0));
        assert_eq!(path.end(), (10.0, 10.0));
    }

    #[test]
    fn figure4_path_is_well_formed() {
        let path = Path::figure4_path();
        assert!(path.num_segments() >= 4);
        assert!(path.length() > 100.0);
        assert_eq!(path.start(), (0.0, 0.0));
        assert_eq!(path.waypoints().len(), path.num_segments() + 1);
    }

    #[test]
    fn angle_error_wraps_to_principal_range() {
        let path = Path::new(vec![(0.0, 0.0), (0.0, 10.0)]);
        let e = path.errors(0.0, 5.0, 2.0 * std::f64::consts::PI);
        assert!(e.angle.abs() < 1e-12);
        let e = path.errors(0.0, 5.0, 3.5 * std::f64::consts::PI);
        assert!(e.angle.abs() <= std::f64::consts::PI);
    }

    #[test]
    #[should_panic(expected = "at least two waypoints")]
    fn single_waypoint_panics() {
        let _ = Path::new(vec![(0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn repeated_waypoints_panic() {
        let _ = Path::new(vec![(0.0, 0.0), (0.0, 0.0)]);
    }

    proptest! {
        #[test]
        fn prop_distance_error_magnitude_matches_euclidean_distance(
            x in -20.0f64..20.0, y in 10.0f64..90.0, theta in -3.0f64..3.0,
        ) {
            // For a vertical path the |d_err| equals the distance to the line x=0
            // whenever the projection falls inside the segment.
            let path = Path::new(vec![(0.0, 0.0), (0.0, 100.0)]);
            let e = path.errors(x, y, theta);
            prop_assert!((e.distance.abs() - x.abs()).abs() < 1e-9);
            prop_assert!(e.angle <= std::f64::consts::PI && e.angle > -std::f64::consts::PI);
        }
    }
}
