//! Offline stand-in for the crates.io
//! [`rand_chacha`](https://docs.rs/rand_chacha/0.3) crate.
//!
//! Exposes a [`ChaCha8Rng`] type with the `SeedableRng::seed_from_u64`
//! constructor the workspace uses. The stream is produced by the `rand`
//! shim's xoshiro256++ core rather than the real ChaCha8 block function, so
//! it is seed-deterministic and portable but **not** bit-compatible with the
//! crates.io crate and **not** cryptographically secure — properties the
//! workspace does not rely on (it only needs reproducible experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng, Xoshiro256};

/// Drop-in stand-in for `rand_chacha::ChaCha8Rng` (see the crate docs for
/// the caveats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng(Xoshiro256);

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Domain-separate from StdRng so the two never share a stream.
        ChaCha8Rng(Xoshiro256::seed_from_u64(seed ^ 0xC4A_C4A_C4A))
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2018);
        let mut b = ChaCha8Rng::seed_from_u64(2018);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(2019);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn usable_via_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
