//! Offline stand-in for the crates.io
//! [`criterion`](https://docs.rs/criterion/0.5) crate.
//!
//! The build environment has no registry access, so this crate provides the
//! macro/API surface the workspace's benches use — [`criterion_group!`],
//! [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] — backed by a simple
//! wall-clock harness:
//!
//! * `cargo bench` (the binary receives `--bench`): each benchmark is warmed
//!   up, then timed over `sample_size` samples sized to fill roughly the
//!   configured `measurement_time`; the median/min/max per-iteration times
//!   are printed in a Criterion-like format. A trailing non-flag CLI argument
//!   filters benchmarks by substring, as with the real crate.
//! * `cargo test` (no `--bench` argument): the binary exits immediately so
//!   the bench targets only assert that they build and link.
//!
//! No statistical analysis, plotting, or result persistence is performed.
//! Swap the workspace `path` dependency for a crates.io version to get the
//! real crate; no bench code needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone (the group name provides the
    /// function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Types accepted as the name argument of `bench_function`.
pub trait IntoBenchmarkId {
    /// Converts to the printed benchmark label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    measurement_time: Duration,
    /// Median/min/max per-iteration nanoseconds, filled in by [`Bencher::iter`].
    result: Option<(f64, f64, f64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`--bench`).
    Measure,
    /// Run each routine once, for smoke-testing.
    Once,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Once {
            black_box(routine());
            return;
        }
        // Warm-up: at least one call, up to ~100 ms, to size the batches.
        let warmup_budget = Duration::from_millis(100);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget || warmup_iters >= 10 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let total_budget = self.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((total_budget / self.samples as f64 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut sample_nanos: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            sample_nanos.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_nanos.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = sample_nanos[sample_nanos.len() / 2];
        let min = sample_nanos[0];
        let max = sample_nanos[sample_nanos.len() - 1];
        self.result = Some((median, min, max));
    }
}

/// Appends one JSON-lines record of per-iteration seconds to the file named
/// by the `CRITERION_JSON` environment variable, when set.  The real
/// criterion crate persists estimates as JSON under `target/criterion/`;
/// this is the shim's equivalent, consumed by the CI bench-regression
/// comparator (`bench-compare`).
fn append_json_record(label: &str, median_nanos: f64, min_nanos: f64, max_nanos: f64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    // JSON string escaping (escape_default would emit Rust-only escapes
    // like \u{b5} that a JSON parser rejects).
    let mut escaped = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    let record = format!(
        "{{\"bench\": \"{escaped}\", \"min_s\": {:?}, \"median_s\": {:?}, \"max_s\": {:?}}}\n",
        min_nanos / 1e9,
        median_nanos / 1e9,
        max_nanos / 1e9,
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(record.as_bytes()));
    if let Err(e) = result {
        eprintln!("criterion shim: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// The benchmark harness configuration and driver, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mode = if args.iter().any(|a| a == "--bench") {
            Mode::Measure
        } else {
            Mode::Once
        };
        let filter = args.into_iter().find(|a| !a.starts_with('-'));
        Criterion {
            measurement_time: Duration::from_secs(5),
            sample_size: 10,
            mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// True when the harness was invoked by `cargo bench` (with `--bench`).
    pub fn is_measuring(&self) -> bool {
        self.mode == Mode::Measure
    }

    fn run_one(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        if let Some((median, min, max)) = bencher.result {
            println!(
                "{label:<50} time: [{} {} {}]",
                format_nanos(min),
                format_nanos(median),
                format_nanos(max)
            );
            append_json_record(label, median, min, max);
        }
    }

    /// Benchmarks a single routine.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        self.run_one(&label, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// A named collection of benchmarks sharing settings, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(1));
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = Some(duration);
        self
    }

    fn effective(&self) -> Criterion {
        Criterion {
            measurement_time: self
                .measurement_time
                .unwrap_or(self.parent.measurement_time),
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
            mode: self.parent.mode,
            filter: self.parent.filter.clone(),
        }
    }

    /// Benchmarks a routine under this group's name.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.effective().run_one(&label, &mut f);
        self
    }

    /// Benchmarks a routine that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.effective().run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in this shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Defines a named group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the bench binary's `main`, mirroring `criterion::criterion_main!`.
///
/// Without `--bench` on the command line (i.e. under `cargo test`) the
/// binary exits immediately so bench targets stay cheap smoke tests.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !std::env::args().any(|a| a == "--bench") {
                eprintln!("bench harness: pass --bench (i.e. run `cargo bench`) to measure");
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_criterion(mode: Mode) -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(50),
            sample_size: 3,
            mode,
            filter: None,
        }
    }

    #[test]
    fn once_mode_runs_routine_exactly_once() {
        let mut criterion = quiet_criterion(Mode::Once);
        let mut calls = 0;
        criterion.bench_function("counter", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut criterion = quiet_criterion(Mode::Measure);
        let mut ran = false;
        criterion.bench_function("spin", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose_labels_and_settings() {
        let mut criterion = quiet_criterion(Mode::Once);
        let mut group = criterion.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(10));
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2));
            seen = x;
        });
        group.bench_function("plain", |b| b.iter(|| black_box(0)));
        group.finish();
        assert_eq!(seen, 3);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).label, "10");
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut criterion = quiet_criterion(Mode::Once);
        criterion.filter = Some("match".into());
        let mut calls = 0;
        criterion.bench_function("matching", |b| b.iter(|| calls += 1));
        criterion.bench_function("other", |b| b.iter(|| calls += 10));
        assert_eq!(calls, 1);
    }
}
