//! Offline stand-in for the crates.io [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate re-implements exactly the subset of the `rand 0.8` API the workspace
//! uses: [`Rng::gen`] for `f64`/`u64`/`bool`, [`Rng::gen_range`] over `f64`
//! ranges, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The generators are deliberately simple (SplitMix64 seeding feeding an
//! xoshiro256++ core) — statistically solid for simulation seeding and
//! CMA-ES sampling, deterministic across platforms, but **not**
//! cryptographically secure and **not** bit-compatible with the real `rand`
//! crate. Swap the workspace `path` dependency for a crates.io version to get
//! the real thing; no call sites need to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the shim's analogue of
/// sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // The endpoint bias of treating the inclusive range as half-open is
        // below f64 resolution for every use in this workspace.
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift rejection-free mapping; bias is ≤ span/2^64.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

/// User-facing random sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Expands a 64-bit seed into well-mixed state words (SplitMix64).
pub(crate) fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ core shared by [`rngs::StdRng`] and the `rand_chacha`
/// shim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from four raw state words (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "state must be non-zero");
        Xoshiro256 { s }
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            split_mix_64(&mut sm),
            split_mix_64(&mut sm),
            split_mix_64(&mut sm),
            split_mix_64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The shim's standard generator (xoshiro256++; the real crate uses
    /// ChaCha12 — both are seed-deterministic, which is all the workspace
    /// relies on).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn floats_are_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.gen_range(-1.5..=1.5);
            assert!((-1.5..=1.5).contains(&y));
            let k = rng.gen_range(0usize..10);
            assert!(k < 10);
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
