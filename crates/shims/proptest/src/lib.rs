//! Offline stand-in for the crates.io
//! [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! The build environment has no registry access, so this crate implements the
//! subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] test macro, [`Strategy`] over `f64` ranges / tuples /
//! `prop_map`, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Each test runs a fixed number of random cases (256 by default, override
//! with `PROPTEST_CASES`) drawn from an RNG seeded by the test name, so runs
//! are deterministic. Unlike the real crate there is **no shrinking**: a
//! failing case panics with the sampled values left to the assertion message.
//! Swap the workspace `path` dependency for a crates.io version to get the
//! real crate; no test code needs to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while sampling test cases.
pub type TestRng = StdRng;

/// Marker returned by `prop_assume!` when a sampled case is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Creates the deterministic per-test RNG (seeded from the test name).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for byte in test_name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(seed)
}

/// Number of cases to run per property (`PROPTEST_CASES`, default 256).
pub fn num_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(256)
}

/// A recipe for generating random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        let span = (self.end - self.start) as usize;
        assert!(span > 0, "cannot sample empty range");
        self.start + rng.gen_range(0..span) as i32
    }
}

/// A strategy producing one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Vector lengths accepted by [`vec()`]: a fixed length or a length range.
    pub trait VecLen {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecLen for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `len` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

/// Defines property tests: each function samples its arguments from the given
/// strategies and runs its body for [`num_cases`] random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call, clippy::neg_cmp_op_on_partial_ord)]
            fn $name() {
                let mut rng = $crate::test_rng(stringify!($name));
                let cases = $crate::num_cases();
                let mut accepted = 0usize;
                let mut attempts = 0usize;
                // Allow prop_assume! to reject up to 20x the case budget
                // before declaring the property vacuous.
                while accepted < cases && attempts < cases * 20 {
                    attempts += 1;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::Rejected> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
                assert!(
                    accepted > 0,
                    "prop_assume! rejected every sampled case of {}",
                    stringify!($name)
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skips the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_test_name() {
        let mut a = crate::test_rng("some_test");
        let mut b = crate::test_rng("some_test");
        let s = (-1.0f64..1.0, 0.0f64..1.0);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -2.0f64..2.0, n in 1usize..5) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_controls_length(v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn prop_map_and_tuple_patterns((lo, hi) in (-5.0f64..0.0, 0.0f64..5.0).prop_map(|(a, b)| (a, b + 1.0))) {
            prop_assert!(lo < hi, "lo {lo} must be below hi {hi}");
        }

        #[test]
        fn assume_rejects_without_failing(x in -1.0f64..1.0) {
            prop_assume!(x > 0.0);
            prop_assert!(x > 0.0);
        }
    }
}
