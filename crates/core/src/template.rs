//! Generator-function templates and concrete generator functions.

use std::fmt;

use nncps_expr::Expr;
use nncps_linalg::{Matrix, SymmetricEigen, Vector};

/// A quadratic template for the generator function
/// `W(x) = xᵀ P x + qᵀ x + c` over `n` state variables.
///
/// The template exposes its monomial basis so that the LP synthesis can build
/// linear constraints in the unknown coefficients: the coefficient vector is
/// ordered as
///
/// ```text
/// [ p_00, p_01, ..., p_0(n-1), p_11, p_12, ..., p_(n-1)(n-1),   (upper triangle of P)
///   q_0, ..., q_(n-1),                                           (linear part)
///   c ]                                                          (constant)
/// ```
///
/// # Examples
///
/// ```
/// use nncps_barrier::QuadraticTemplate;
///
/// let template = QuadraticTemplate::new(2);
/// assert_eq!(template.num_coefficients(), 6); // x², xy, y², x, y, 1
/// let basis = template.basis_values(&[2.0, 3.0]);
/// assert_eq!(basis, vec![4.0, 6.0, 9.0, 2.0, 3.0, 1.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadraticTemplate {
    dim: usize,
}

impl QuadraticTemplate {
    /// Creates a quadratic template over `dim` state variables.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "template dimension must be positive");
        QuadraticTemplate { dim }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of quadratic monomials (upper triangle of `P`).
    pub fn num_quadratic_terms(&self) -> usize {
        self.dim * (self.dim + 1) / 2
    }

    /// Total number of template coefficients (quadratic + linear + constant).
    pub fn num_coefficients(&self) -> usize {
        self.num_quadratic_terms() + self.dim + 1
    }

    /// Evaluates every basis monomial at a point, in coefficient order.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn basis_values(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        let mut values = Vec::with_capacity(self.num_coefficients());
        for i in 0..self.dim {
            for j in i..self.dim {
                values.push(point[i] * point[j]);
            }
        }
        values.extend_from_slice(point);
        values.push(1.0);
        values
    }

    /// Evaluates, for every basis monomial, the value of its Lie derivative
    /// `∇(monomial)·f` at `point` given the vector-field value
    /// `derivative = f(point)`, in coefficient order.
    ///
    /// The Lie derivative of the template is linear in the template
    /// coefficients, so the returned row can be used directly as an LP
    /// constraint `(∇W)(x*)·f(x*) ≤ −margin` that cuts off a candidate whose
    /// decrease condition fails at the counterexample `x*`.
    ///
    /// # Panics
    ///
    /// Panics if `point` or `derivative` do not have the template dimension.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_barrier::QuadraticTemplate;
    ///
    /// let template = QuadraticTemplate::new(2);
    /// // d/dt of [x², xy, y², x, y, 1] along f = (fx, fy):
    /// // [2x·fx, y·fx + x·fy, 2y·fy, fx, fy, 0]
    /// let row = template.lie_basis_values(&[2.0, 3.0], &[-1.0, 0.5]);
    /// assert_eq!(row, vec![-4.0, -2.0, 3.0, -1.0, 0.5, 0.0]);
    /// ```
    pub fn lie_basis_values(&self, point: &[f64], derivative: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        assert_eq!(derivative.len(), self.dim, "derivative dimension mismatch");
        let mut values = Vec::with_capacity(self.num_coefficients());
        for i in 0..self.dim {
            for j in i..self.dim {
                if i == j {
                    values.push(2.0 * point[i] * derivative[i]);
                } else {
                    values.push(point[j] * derivative[i] + point[i] * derivative[j]);
                }
            }
        }
        values.extend_from_slice(derivative);
        values.push(0.0);
        values
    }

    /// Index of the coefficient multiplying `x_i · x_j` (with `i <= j`).
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j >= self.dim()`.
    pub fn quadratic_index(&self, i: usize, j: usize) -> usize {
        assert!(i <= j && j < self.dim, "invalid quadratic term indices");
        // Number of entries in rows 0..i of the upper triangle, plus offset in row i.
        let row_offset: usize = (0..i).map(|r| self.dim - r).sum();
        row_offset + (j - i)
    }

    /// Index of the coefficient multiplying `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn linear_index(&self, i: usize) -> usize {
        assert!(i < self.dim, "linear index out of range");
        self.num_quadratic_terms() + i
    }

    /// Index of the constant coefficient.
    pub fn constant_index(&self) -> usize {
        self.num_coefficients() - 1
    }

    /// Builds a concrete generator function from a coefficient vector.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient count does not match the template.
    pub fn instantiate(&self, coefficients: &[f64]) -> GeneratorFunction {
        assert_eq!(
            coefficients.len(),
            self.num_coefficients(),
            "coefficient count mismatch"
        );
        let n = self.dim;
        let mut p = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let coef = coefficients[self.quadratic_index(i, j)];
                if i == j {
                    p[(i, j)] = coef;
                } else {
                    // Split the cross term symmetrically.
                    p[(i, j)] = coef / 2.0;
                    p[(j, i)] = coef / 2.0;
                }
            }
        }
        let q = Vector::from_fn(n, |i| coefficients[self.linear_index(i)]);
        let c = coefficients[self.constant_index()];
        GeneratorFunction::new(p, q, c)
    }
}

/// A concrete generator function `W(x) = xᵀ P x + qᵀ x + c`.
///
/// A level set of a generator function is a barrier-certificate candidate:
/// `B(x) = W(x) − ℓ`.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorFunction {
    p: Matrix,
    q: Vector,
    c: f64,
}

impl GeneratorFunction {
    /// Creates a generator function from its quadratic, linear, and constant
    /// parts.  `P` is symmetrized on construction.
    ///
    /// # Panics
    ///
    /// Panics if `P` is not square or `q` has a different dimension.
    pub fn new(mut p: Matrix, q: Vector, c: f64) -> Self {
        assert!(p.is_square(), "quadratic part must be square");
        assert_eq!(p.rows(), q.len(), "linear part dimension mismatch");
        p.symmetrize();
        GeneratorFunction { p, q, c }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.p.rows()
    }

    /// The symmetric quadratic part `P`.
    pub fn quadratic_part(&self) -> &Matrix {
        &self.p
    }

    /// The linear part `q`.
    pub fn linear_part(&self) -> &Vector {
        &self.q
    }

    /// The constant part `c`.
    pub fn constant_part(&self) -> f64 {
        self.c
    }

    /// Evaluates `W(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn evaluate(&self, point: &[f64]) -> f64 {
        let x = Vector::from_slice(point);
        self.p.quadratic_form(&x) + self.q.dot(&x) + self.c
    }

    /// Evaluates the gradient `∇W(x) = 2 P x + q`.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn gradient(&self, point: &[f64]) -> Vec<f64> {
        let x = Vector::from_slice(point);
        let px = self.p.mat_vec(&x);
        (0..self.dim()).map(|i| 2.0 * px[i] + self.q[i]).collect()
    }

    /// Returns `W` as a symbolic expression over variables `x0..x(n-1)`.
    pub fn to_expr(&self) -> Expr {
        let n = self.dim();
        let mut expr = Expr::constant(self.c);
        for i in 0..n {
            if self.q[i] != 0.0 {
                expr = expr + Expr::constant(self.q[i]) * Expr::var(i);
            }
            for j in 0..n {
                if self.p[(i, j)] != 0.0 {
                    expr = expr + Expr::constant(self.p[(i, j)]) * Expr::var(i) * Expr::var(j);
                }
            }
        }
        expr.simplified()
    }

    /// Returns the symbolic gradient `[∂W/∂x0, ..., ∂W/∂x(n-1)]`.
    pub fn gradient_exprs(&self) -> Vec<Expr> {
        let w = self.to_expr();
        (0..self.dim())
            .map(|i| w.differentiate(i).simplified())
            .collect()
    }

    /// Returns `true` if the quadratic part is positive definite (all
    /// eigenvalues greater than `tol`), which guarantees that every sublevel
    /// set of `W` is a bounded ellipsoid.
    pub fn is_positive_definite(&self, tol: f64) -> bool {
        SymmetricEigen::new(&self.p)
            .map(|eig| eig.is_positive_definite(tol))
            .unwrap_or(false)
    }

    /// The unconstrained minimizer `x* = −P⁻¹ q / 2` of `W`, if `P` is
    /// invertible.
    pub fn minimizer(&self) -> Option<Vec<f64>> {
        let rhs = self.q.scaled(-0.5);
        self.p.solve(&rhs).ok().map(Vector::into_vec)
    }

    /// The global minimum value of `W` (when `P` is positive definite).
    pub fn minimum_value(&self) -> Option<f64> {
        self.minimizer().map(|x| self.evaluate(&x))
    }

    /// An axis-aligned bounding box of the sublevel set `{x : W(x) ≤ level}`,
    /// or `None` if the quadratic part is not positive definite or the
    /// sublevel set is empty.
    ///
    /// The box is computed from the smallest eigenvalue of `P`:
    /// `‖x − x*‖² ≤ (level − W(x*)) / λ_min`.
    pub fn sublevel_bounding_box(&self, level: f64) -> Option<Vec<(f64, f64)>> {
        let eig = SymmetricEigen::new(&self.p).ok()?;
        if !eig.is_positive_definite(1e-12) {
            return None;
        }
        let center = self.minimizer()?;
        let min_value = self.evaluate(&center);
        if level < min_value {
            return None;
        }
        let radius = ((level - min_value) / eig.min_eigenvalue()).sqrt();
        Some(
            center
                .iter()
                .map(|&ci| (ci - radius, ci + radius))
                .collect(),
        )
    }
}

impl fmt::Display for GeneratorFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W(x) = {}", self.to_expr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn template_counts_and_indices() {
        let t = QuadraticTemplate::new(2);
        assert_eq!(t.dim(), 2);
        assert_eq!(t.num_quadratic_terms(), 3);
        assert_eq!(t.num_coefficients(), 6);
        assert_eq!(t.quadratic_index(0, 0), 0);
        assert_eq!(t.quadratic_index(0, 1), 1);
        assert_eq!(t.quadratic_index(1, 1), 2);
        assert_eq!(t.linear_index(0), 3);
        assert_eq!(t.linear_index(1), 4);
        assert_eq!(t.constant_index(), 5);
        let t3 = QuadraticTemplate::new(3);
        assert_eq!(t3.num_coefficients(), 6 + 3 + 1);
        assert_eq!(t3.quadratic_index(1, 2), 4);
        assert_eq!(t3.quadratic_index(2, 2), 5);
    }

    #[test]
    fn basis_values_match_monomials() {
        let t = QuadraticTemplate::new(2);
        assert_eq!(
            t.basis_values(&[2.0, -3.0]),
            vec![4.0, -6.0, 9.0, 2.0, -3.0, 1.0]
        );
        let t3 = QuadraticTemplate::new(3);
        let b = t3.basis_values(&[1.0, 2.0, 3.0]);
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0, 6.0, 9.0, 1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn instantiation_matches_coefficient_dot_basis() {
        let t = QuadraticTemplate::new(2);
        let coefficients = [1.5, -0.4, 2.0, 0.3, -0.1, 0.7];
        let w = t.instantiate(&coefficients);
        for &point in &[[0.0, 0.0], [1.0, -2.0], [0.5, 0.25], [-3.0, 4.0]] {
            let via_basis: f64 = t
                .basis_values(&point)
                .iter()
                .zip(coefficients.iter())
                .map(|(b, c)| b * c)
                .sum();
            assert!((w.evaluate(&point) - via_basis).abs() < 1e-12);
        }
    }

    #[test]
    fn generator_gradient_and_expr_agree() {
        let w = GeneratorFunction::new(
            Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]),
            Vector::from_slice(&[0.3, -0.2]),
            0.1,
        );
        let expr = w.to_expr();
        let grad_exprs = w.gradient_exprs();
        for &point in &[[0.0, 0.0], [1.0, 2.0], [-0.7, 0.4]] {
            assert!((expr.eval(&point) - w.evaluate(&point)).abs() < 1e-12);
            let grad = w.gradient(&point);
            for i in 0..2 {
                assert!((grad_exprs[i].eval(&point) - grad[i]).abs() < 1e-12);
            }
        }
        assert!(format!("{w}").starts_with("W(x) ="));
    }

    #[test]
    fn definiteness_minimizer_and_bounding_box() {
        let w = GeneratorFunction::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]),
            Vector::from_slice(&[0.0, 0.0]),
            0.0,
        );
        assert!(w.is_positive_definite(1e-9));
        assert_eq!(w.minimizer().unwrap(), vec![0.0, 0.0]);
        assert_eq!(w.minimum_value().unwrap(), 0.0);
        let bb = w.sublevel_bounding_box(4.0).unwrap();
        // lambda_min = 1, so the bounding radius is 2 in every direction.
        assert!((bb[0].0 + 2.0).abs() < 1e-9 && (bb[0].1 - 2.0).abs() < 1e-9);
        assert!((bb[1].0 + 2.0).abs() < 1e-9 && (bb[1].1 - 2.0).abs() < 1e-9);
        // The true extent in x1 is only 1 (= sqrt(4/4)), so the box is an
        // over-approximation — exactly what soundness needs.
        assert!(w.sublevel_bounding_box(-1.0).is_none());

        let indefinite = GeneratorFunction::new(
            Matrix::from_rows(&[&[1.0, 3.0], &[3.0, 1.0]]),
            Vector::zeros(2),
            0.0,
        );
        assert!(!indefinite.is_positive_definite(0.0));
        assert!(indefinite.sublevel_bounding_box(1.0).is_none());
    }

    #[test]
    fn shifted_generator_minimizer() {
        // W(x) = (x-1)^2 + (y+2)^2 = x^2 + y^2 - 2x + 4y + 5
        let w = GeneratorFunction::new(Matrix::identity(2), Vector::from_slice(&[-2.0, 4.0]), 5.0);
        let m = w.minimizer().unwrap();
        assert!((m[0] - 1.0).abs() < 1e-9);
        assert!((m[1] + 2.0).abs() < 1e-9);
        assert!(w.minimum_value().unwrap().abs() < 1e-9);
        let bb = w.sublevel_bounding_box(1.0).unwrap();
        assert!(bb[0].0 <= 0.0 && bb[0].1 >= 2.0);
    }

    #[test]
    #[should_panic(expected = "coefficient count mismatch")]
    fn wrong_coefficient_count_panics() {
        let _ = QuadraticTemplate::new(2).instantiate(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_panics() {
        let _ = QuadraticTemplate::new(0);
    }

    proptest! {
        #[test]
        fn prop_gradient_matches_finite_differences(
            p11 in 0.5f64..3.0, p12 in -1.0f64..1.0, p22 in 0.5f64..3.0,
            q1 in -2.0f64..2.0, q2 in -2.0f64..2.0, c in -1.0f64..1.0,
            x in -3.0f64..3.0, y in -3.0f64..3.0,
        ) {
            let w = GeneratorFunction::new(
                Matrix::from_rows(&[&[p11, p12], &[p12, p22]]),
                Vector::from_slice(&[q1, q2]),
                c,
            );
            let grad = w.gradient(&[x, y]);
            let h = 1e-6;
            let fd0 = (w.evaluate(&[x + h, y]) - w.evaluate(&[x - h, y])) / (2.0 * h);
            let fd1 = (w.evaluate(&[x, y + h]) - w.evaluate(&[x, y - h])) / (2.0 * h);
            prop_assert!((grad[0] - fd0).abs() < 1e-5);
            prop_assert!((grad[1] - fd1).abs() < 1e-5);
        }

        #[test]
        fn prop_sublevel_bounding_box_contains_sublevel_points(
            p11 in 0.5f64..3.0, p22 in 0.5f64..3.0,
            x in -2.0f64..2.0, y in -2.0f64..2.0,
        ) {
            let w = GeneratorFunction::new(
                Matrix::from_rows(&[&[p11, 0.1], &[0.1, p22]]),
                Vector::zeros(2),
                0.0,
            );
            let value = w.evaluate(&[x, y]);
            let bb = w.sublevel_bounding_box(value).unwrap();
            prop_assert!(x >= bb[0].0 - 1e-9 && x <= bb[0].1 + 1e-9);
            prop_assert!(y >= bb[1].0 - 1e-9 && y <= bb[1].1 + 1e-9);
        }
    }
}
