//! Simulation-guided barrier-certificate synthesis for NN-controlled CPS.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Reasoning about Safety of Learning-Enabled Components in Autonomous
//! Cyber-physical Systems*, Tuncali et al., DAC 2018): an automatic procedure
//! that proves unbounded-time safety of a closed-loop system whose controller
//! is a neural network, by
//!
//! 1. simulating the closed loop from random initial states (traces Φs),
//! 2. fitting a quadratic **generator function** `W(x)` to linear constraints
//!    extracted from the traces (positivity, decrease along trajectories) with
//!    an LP solver,
//! 3. checking the decrease condition `(∇W)ᵀ·f(x) < 0` globally with a δ-SAT
//!    solver (this workspace's dReal stand-in), feeding counterexamples back
//!    into the LP until the check passes,
//! 4. selecting a **level set** `ℓ` such that `L = {W ≤ ℓ}` contains the
//!    initial set `X0` and avoids the unsafe set `U`, confirming both facts
//!    with two more δ-SAT queries, and
//! 5. returning the **strict barrier certificate** `B(x) = W(x) − ℓ`.
//!
//! The module layout mirrors the flowchart of Figure 1 in the paper:
//!
//! | paper step                        | module |
//! |-----------------------------------|--------|
//! | templates for `W`                 | [`template`] |
//! | `X0`, `U`, `D` descriptions       | [`sets`] |
//! | traces → LP → candidate           | [`synthesis`] |
//! | SMT queries (5), (6), (7)         | [`queries`] |
//! | level-set computation             | [`level_set`] |
//! | the barrier certificate itself    | [`certificate`] |
//! | the closed-loop model description | [`system`] |
//! | the end-to-end procedure          | [`pipeline`] |
//!
//! All verification flows through one entry point:
//! [`VerificationSession::verify`] takes a [`VerificationRequest`]
//! (system + config + budget) and returns a
//! [`VerificationOutcome`]; the session owns every cache that outlives a
//! single request (warm-start memo layers, a whole-outcome memo, and an
//! optional on-disk [`DiskStore`]).
//!
//! # Examples
//!
//! ```
//! use nncps_barrier::{
//!     ClosedLoopSystem, SafetySpec, VerificationRequest, VerificationSession,
//! };
//! use nncps_expr::Expr;
//! use nncps_interval::IntervalBox;
//!
//! // A stable linear system x' = -x, y' = -y (no NN — just a smoke test).
//! let system = ClosedLoopSystem::new(
//!     vec![-Expr::var(0), -Expr::var(1)],
//!     SafetySpec::rectangular(
//!         IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
//!         IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
//!     ),
//! );
//! let session = VerificationSession::new();
//! let outcome = session.verify(&VerificationRequest::over(&system));
//! assert!(outcome.is_certified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod level_set;
pub mod pipeline;
pub mod queries;
pub mod session;
pub mod sets;
pub mod store;
pub mod synthesis;
pub mod system;
pub mod template;
pub mod warmstart;

pub use certificate::BarrierCertificate;
pub use level_set::{LevelSetResult, LevelSetSelector};
pub use pipeline::{
    ConfigError, StageTimings, VerificationConfig, VerificationConfigBuilder, VerificationOutcome,
    VerificationStats, Verifier,
};
pub use queries::QueryBuilder;
pub use session::{SessionStats, VerificationRequest, VerificationSession};
pub use sets::{Halfspace, SafetySpec};
pub use store::{DiskStore, DiskStoreStats, STORE_FORMAT_VERSION};
pub use synthesis::{CandidateSynthesizer, SynthesisError};
pub use system::ClosedLoopSystem;
pub use template::{GeneratorFunction, QuadraticTemplate};
pub use warmstart::{WarmStart, WarmStartStats};
// Governance vocabulary for `VerificationRequest::with_budget` and
// `VerificationStats::exhaustion`.
pub use nncps_deltasat::{Budget, ExhaustionReason};
