//! Descriptions of the initial set `X0`, unsafe set `U`, and domain `D`.

use nncps_deltasat::{Constraint, Formula};
use nncps_expr::Expr;
use nncps_interval::IntervalBox;

/// A closed halfspace `normal · x ≥ offset`.
///
/// The paper's unsafe set is "the complement (outside) of a rectangle", which
/// is exactly a union of four such halfspaces.
#[derive(Debug, Clone, PartialEq)]
pub struct Halfspace {
    normal: Vec<f64>,
    offset: f64,
}

impl Halfspace {
    /// Creates the halfspace `normal · x ≥ offset`.
    ///
    /// # Panics
    ///
    /// Panics if the normal vector is all zeros.
    pub fn new(normal: Vec<f64>, offset: f64) -> Self {
        assert!(
            normal.iter().any(|&v| v != 0.0),
            "halfspace normal must be nonzero"
        );
        Halfspace { normal, offset }
    }

    /// The normal vector.
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// The offset `b` in `a·x ≥ b`.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// Returns `true` if the point belongs to the halfspace.
    ///
    /// # Panics
    ///
    /// Panics if the point dimension differs from the halfspace dimension.
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        self.linear_value(point) >= self.offset
    }

    /// Evaluates `normal · x`.
    pub fn linear_value(&self, point: &[f64]) -> f64 {
        self.normal
            .iter()
            .zip(point.iter())
            .map(|(a, x)| a * x)
            .sum()
    }

    /// The membership condition as a δ-SAT constraint `a·x ≥ b`.
    pub fn membership_constraint(&self) -> Constraint {
        let mut expr = Expr::constant(0.0);
        for (i, &a) in self.normal.iter().enumerate() {
            if a != 0.0 {
                expr = expr + Expr::constant(a) * Expr::var(i);
            }
        }
        Constraint::ge(expr.simplified(), self.offset)
    }
}

/// The safety specification of a verification problem: initial set `X0`,
/// unsafe set `U` (a union of halfspaces), and the domain of interest `D`
/// over which the decrease condition is checked.
///
/// For the paper's case study `X0` and the safe region are axis-aligned
/// rectangles; use [`SafetySpec::rectangular`] to construct that layout
/// directly.
///
/// # Examples
///
/// ```
/// use nncps_barrier::SafetySpec;
/// use nncps_interval::IntervalBox;
///
/// let spec = SafetySpec::rectangular(
///     IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
///     IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
/// );
/// assert!(spec.is_initial(&[0.0, 0.0]));
/// assert!(spec.is_unsafe(&[3.5, 0.0])); // outside the safe region
/// assert!(!spec.is_unsafe(&[1.0, 1.0]));
/// assert_eq!(spec.dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SafetySpec {
    initial_set: IntervalBox,
    unsafe_halfspaces: Vec<Halfspace>,
    domain: IntervalBox,
}

impl SafetySpec {
    /// Creates a specification from explicit components.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent or the unsafe set is empty.
    pub fn new(
        initial_set: IntervalBox,
        unsafe_halfspaces: Vec<Halfspace>,
        domain: IntervalBox,
    ) -> Self {
        let dim = initial_set.dim();
        assert_eq!(domain.dim(), dim, "domain dimension mismatch");
        assert!(
            !unsafe_halfspaces.is_empty(),
            "the unsafe set needs at least one halfspace"
        );
        for h in &unsafe_halfspaces {
            assert_eq!(h.dim(), dim, "halfspace dimension mismatch");
        }
        SafetySpec {
            initial_set,
            unsafe_halfspaces,
            domain,
        }
    }

    /// The paper's layout: `X0` is a rectangle and `U` is the complement of
    /// the rectangle `safe_region`; the domain of interest is `safe_region`
    /// itself (the region between `X0` and `U`).
    ///
    /// # Panics
    ///
    /// Panics if the rectangles have different dimensions or `X0` is not
    /// contained in the safe region.
    pub fn rectangular(initial_set: IntervalBox, safe_region: IntervalBox) -> Self {
        let dim = initial_set.dim();
        assert_eq!(safe_region.dim(), dim, "rectangle dimension mismatch");
        assert!(
            safe_region.contains_box(&initial_set),
            "X0 must be contained in the safe region"
        );
        let mut halfspaces = Vec::with_capacity(2 * dim);
        for i in 0..dim {
            // x_i >= hi  (beyond the upper face)
            let mut normal = vec![0.0; dim];
            normal[i] = 1.0;
            halfspaces.push(Halfspace::new(normal, safe_region[i].hi()));
            // x_i <= lo  encoded as  -x_i >= -lo
            let mut normal = vec![0.0; dim];
            normal[i] = -1.0;
            halfspaces.push(Halfspace::new(normal, -safe_region[i].lo()));
        }
        SafetySpec::new(initial_set, halfspaces, safe_region)
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.initial_set.dim()
    }

    /// The initial set `X0`.
    pub fn initial_set(&self) -> &IntervalBox {
        &self.initial_set
    }

    /// The halfspaces whose union is the unsafe set `U`.
    pub fn unsafe_halfspaces(&self) -> &[Halfspace] {
        &self.unsafe_halfspaces
    }

    /// The domain of interest `D` used for the decrease check.
    pub fn domain(&self) -> &IntervalBox {
        &self.domain
    }

    /// Returns `true` if a point lies in the unsafe set.
    pub fn is_unsafe(&self, point: &[f64]) -> bool {
        self.unsafe_halfspaces.iter().any(|h| h.contains(point))
    }

    /// Returns `true` if a point lies in the initial set.
    pub fn is_initial(&self, point: &[f64]) -> bool {
        self.initial_set.contains_point(point)
    }

    /// Formula asserting `x ∉ X0` (a disjunction over the faces of `X0`).
    ///
    /// This is the `x ∉ X0` conjunct of the paper's query (5); strict
    /// inequalities are used so points on the boundary of `X0` are treated as
    /// members of `X0` (the weakest, hence sound, choice for the decrease
    /// check).
    pub fn outside_initial_set(&self) -> Formula {
        let mut branches = Vec::with_capacity(2 * self.dim());
        for i in 0..self.dim() {
            branches.push(Formula::atom(Constraint::lt(
                Expr::var(i),
                self.initial_set[i].lo(),
            )));
            branches.push(Formula::atom(Constraint::gt(
                Expr::var(i),
                self.initial_set[i].hi(),
            )));
        }
        Formula::or(branches)
    }

    /// Formula asserting `x ∈ U` (a disjunction over the unsafe halfspaces).
    pub fn inside_unsafe_set(&self) -> Formula {
        Formula::or(
            self.unsafe_halfspaces
                .iter()
                .map(|h| Formula::atom(h.membership_constraint()))
                .collect(),
        )
    }

    /// Absorbs every bit of the specification (initial set, unsafe
    /// halfspaces, domain) into a structural hasher, for the warm-start
    /// memoization keys.
    pub(crate) fn write_structural(&self, hasher: &mut nncps_expr::StructuralHasher) {
        let write_box = |hasher: &mut nncps_expr::StructuralHasher, b: &IntervalBox| {
            hasher.write_usize(b.dim());
            for interval in b.iter() {
                hasher.write_f64(interval.lo());
                hasher.write_f64(interval.hi());
            }
        };
        hasher.write_u8(0x31);
        write_box(hasher, &self.initial_set);
        write_box(hasher, &self.domain);
        hasher.write_usize(self.unsafe_halfspaces.len());
        for halfspace in &self.unsafe_halfspaces {
            for &a in halfspace.normal() {
                hasher.write_f64(a);
            }
            hasher.write_f64(halfspace.offset());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_spec() -> SafetySpec {
        let eps = 0.01;
        SafetySpec::rectangular(
            IntervalBox::from_bounds(&[
                (-1.0, 1.0),
                (-std::f64::consts::PI / 16.0, std::f64::consts::PI / 16.0),
            ]),
            IntervalBox::from_bounds(&[
                (-5.0, 5.0),
                (
                    -(std::f64::consts::FRAC_PI_2 - eps),
                    std::f64::consts::FRAC_PI_2 - eps,
                ),
            ]),
        )
    }

    #[test]
    fn halfspace_membership_and_constraint() {
        let h = Halfspace::new(vec![1.0, 0.0], 5.0);
        assert!(h.contains(&[6.0, 0.0]));
        assert!(!h.contains(&[4.0, 100.0]));
        assert_eq!(h.dim(), 2);
        assert_eq!(h.normal(), &[1.0, 0.0]);
        assert_eq!(h.offset(), 5.0);
        assert_eq!(h.linear_value(&[3.0, 9.0]), 3.0);
        let c = h.membership_constraint();
        assert!(c.satisfied_within(&[5.5, 0.0], 0.0));
        assert!(!c.satisfied_within(&[4.0, 0.0], 0.0));
    }

    #[test]
    fn rectangular_spec_builds_four_halfspaces_in_2d() {
        let spec = paper_spec();
        assert_eq!(spec.dim(), 2);
        assert_eq!(spec.unsafe_halfspaces().len(), 4);
        // Inside the safe region and outside X0: not unsafe, not initial.
        assert!(!spec.is_unsafe(&[3.0, 0.5]));
        assert!(!spec.is_initial(&[3.0, 0.5]));
        // Inside X0.
        assert!(spec.is_initial(&[0.5, 0.1]));
        // Beyond the distance bound: unsafe.
        assert!(spec.is_unsafe(&[5.5, 0.0]));
        assert!(spec.is_unsafe(&[-6.0, 0.0]));
        // Beyond the angle bound: unsafe.
        assert!(spec.is_unsafe(&[0.0, 1.6]));
        assert!(spec.is_unsafe(&[0.0, -1.6]));
        assert_eq!(spec.domain()[0].hi(), 5.0);
        assert_eq!(spec.initial_set()[0].hi(), 1.0);
    }

    #[test]
    fn outside_initial_set_formula_semantics() {
        let spec = paper_spec();
        let outside = spec.outside_initial_set();
        assert!(outside.satisfied_within(&[2.0, 0.0], 0.0));
        assert!(outside.satisfied_within(&[0.0, 0.5], 0.0));
        assert!(!outside.satisfied_within(&[0.5, 0.1], 0.0));
    }

    #[test]
    fn inside_unsafe_set_formula_semantics() {
        let spec = paper_spec();
        let unsafe_formula = spec.inside_unsafe_set();
        assert!(unsafe_formula.satisfied_within(&[5.5, 0.0], 0.0));
        assert!(unsafe_formula.satisfied_within(&[0.0, -1.7], 0.0));
        assert!(!unsafe_formula.satisfied_within(&[2.0, 0.3], 0.0));
    }

    #[test]
    fn custom_halfspace_specification() {
        let spec = SafetySpec::new(
            IntervalBox::from_bounds(&[(-0.1, 0.1)]),
            vec![Halfspace::new(vec![1.0], 2.0)],
            IntervalBox::from_bounds(&[(-2.0, 2.0)]),
        );
        assert!(spec.is_unsafe(&[2.5]));
        assert!(!spec.is_unsafe(&[1.5]));
    }

    #[test]
    #[should_panic(expected = "contained in the safe region")]
    fn initial_set_outside_safe_region_panics() {
        let _ = SafetySpec::rectangular(
            IntervalBox::from_bounds(&[(-10.0, 10.0)]),
            IntervalBox::from_bounds(&[(-5.0, 5.0)]),
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_normal_panics() {
        let _ = Halfspace::new(vec![0.0, 0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one halfspace")]
    fn empty_unsafe_set_panics() {
        let _ = SafetySpec::new(
            IntervalBox::from_bounds(&[(0.0, 1.0)]),
            vec![],
            IntervalBox::from_bounds(&[(0.0, 1.0)]),
        );
    }
}
