//! The barrier certificate produced by a successful verification run.

use std::fmt;

use nncps_expr::Expr;

use crate::{GeneratorFunction, SafetySpec};

/// A strict barrier certificate `B(x) = W(x) − ℓ`.
///
/// Per Definition 2.1 of the paper, the existence of such a function with
///
/// 1. `B(x) ≤ 0` on the initial set `X0`,
/// 2. `B(x) > 0` on the unsafe set `U`, and
/// 3. `(∇B)ᵀ·f(x) < 0` wherever `B(x) = 0`,
///
/// proves that no trajectory starting in `X0` ever reaches `U`, in finite or
/// infinite time.  Instances of this type are produced by the verification
/// pipeline only after all three conditions have been discharged by the δ-SAT
/// solver, but the type also offers numeric spot checks that are convenient in
/// tests and examples.
///
/// # Examples
///
/// ```
/// use nncps_barrier::{BarrierCertificate, GeneratorFunction};
/// use nncps_linalg::{Matrix, Vector};
///
/// // W(x) = x1² + x2², certified level ℓ = 1: the invariant is the unit disk.
/// let w = GeneratorFunction::new(Matrix::identity(2), Vector::zeros(2), 0.0);
/// let certificate = BarrierCertificate::new(w, 1.0);
/// assert!(certificate.contains(&[0.5, 0.5]));
/// assert!(!certificate.contains(&[1.5, 0.0]));
/// assert!(certificate.value(&[2.0, 0.0]) > 0.0); // B > 0 outside
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierCertificate {
    generator: GeneratorFunction,
    level: f64,
}

impl BarrierCertificate {
    /// Creates a certificate from a generator function and a level `ℓ`.
    pub fn new(generator: GeneratorFunction, level: f64) -> Self {
        BarrierCertificate { generator, level }
    }

    /// The generator function `W`.
    pub fn generator(&self) -> &GeneratorFunction {
        &self.generator
    }

    /// The level `ℓ` defining the certified invariant `L = {W ≤ ℓ}`.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Evaluates `B(x) = W(x) − ℓ`.
    pub fn value(&self, point: &[f64]) -> f64 {
        self.generator.evaluate(point) - self.level
    }

    /// Returns `true` if the point lies in the certified invariant set
    /// `L = {x : B(x) ≤ 0}`.
    pub fn contains(&self, point: &[f64]) -> bool {
        self.value(point) <= 0.0
    }

    /// The barrier as a symbolic expression `W(x) − ℓ`.
    pub fn to_expr(&self) -> Expr {
        (self.generator.to_expr() - Expr::constant(self.level)).simplified()
    }

    /// Numerically spot-checks the three barrier conditions on a grid of
    /// sample points, returning the number of violations found.  A return of
    /// `0` does not prove anything (that is the SMT solver's job) but a
    /// nonzero return definitely indicates a broken certificate; the check is
    /// used as a cheap sanity layer in tests and examples.
    ///
    /// `vector_field` evaluates `f(x)`; `samples_per_dim` controls the grid
    /// resolution over the specification's domain.
    pub fn count_violations<F>(
        &self,
        spec: &SafetySpec,
        vector_field: F,
        samples_per_dim: usize,
    ) -> usize
    where
        F: Fn(&[f64]) -> Vec<f64>,
    {
        let dim = spec.dim();
        let domain = spec.domain();
        let steps = samples_per_dim.max(2);
        let mut violations = 0;
        // The corners of X0 are the extreme points of condition (1); check
        // them explicitly since a coarse grid can miss them entirely.
        for corner in spec.initial_set().corners() {
            if self.value(&corner) > 1e-9 {
                violations += 1;
            }
        }
        let mut index = vec![0usize; dim];
        loop {
            let point: Vec<f64> = (0..dim)
                .map(|d| {
                    let t = index[d] as f64 / (steps - 1) as f64;
                    domain[d].lo() + t * domain[d].width()
                })
                .collect();
            // Condition (1): B <= 0 on X0.
            if spec.is_initial(&point) && self.value(&point) > 1e-9 {
                violations += 1;
            }
            // Condition (2): B > 0 on U.
            if spec.is_unsafe(&point) && self.value(&point) <= 0.0 {
                violations += 1;
            }
            // Condition (3) near the boundary: ∇B·f < 0 where |B| is small.
            if self.value(&point).abs() < 1e-2 {
                let grad = self.generator.gradient(&point);
                let f = vector_field(&point);
                let lie: f64 = grad.iter().zip(f.iter()).map(|(g, v)| g * v).sum();
                if lie >= 0.0 {
                    violations += 1;
                }
            }
            // Advance the grid index.
            let mut d = 0;
            loop {
                if d == dim {
                    return violations;
                }
                index[d] += 1;
                if index[d] < steps {
                    break;
                }
                index[d] = 0;
                d += 1;
            }
        }
    }
}

impl fmt::Display for BarrierCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "B(x) = {} - {:.6} <= 0",
            self.generator.to_expr(),
            self.level
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_interval::IntervalBox;
    use nncps_linalg::{Matrix, Vector};

    fn spec() -> SafetySpec {
        SafetySpec::rectangular(
            IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
            IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
        )
    }

    fn circle_certificate(level: f64) -> BarrierCertificate {
        BarrierCertificate::new(
            GeneratorFunction::new(Matrix::identity(2), Vector::zeros(2), 0.0),
            level,
        )
    }

    #[test]
    fn value_and_membership() {
        let cert = circle_certificate(1.0);
        assert!(cert.contains(&[0.5, 0.5]));
        assert!(!cert.contains(&[1.5, 0.0]));
        assert!((cert.value(&[1.0, 0.0])).abs() < 1e-12);
        assert_eq!(cert.level(), 1.0);
        assert_eq!(cert.generator().dim(), 2);
        let expr = cert.to_expr();
        assert!((expr.eval(&[0.0, 0.0]) + 1.0).abs() < 1e-12);
        assert!(format!("{cert}").contains("<= 0"));
    }

    #[test]
    fn valid_certificate_has_no_violations_on_grid() {
        // W = x^2 + y^2, level 4: contains X0 (max 0.5), avoids U (starts at 9),
        // and strictly decreases along the stable flow.
        let cert = circle_certificate(4.0);
        let violations = cert.count_violations(&spec(), |p| vec![-p[0], -p[1]], 21);
        assert_eq!(violations, 0);
    }

    #[test]
    fn broken_certificates_are_caught_by_spot_checks() {
        // Level too small: X0 corners stick out of L.
        let too_small = circle_certificate(0.3);
        assert!(too_small.count_violations(&spec(), |p| vec![-p[0], -p[1]], 21) > 0);
        // Level too large: L reaches the unsafe set.
        let too_large = circle_certificate(25.0);
        assert!(too_large.count_violations(&spec(), |p| vec![-p[0], -p[1]], 21) > 0);
        // Wrong flow direction: the boundary condition fails.
        let wrong_flow = circle_certificate(4.0);
        assert!(wrong_flow.count_violations(&spec(), |p| vec![p[0], p[1]], 41) > 0);
    }
}
