//! Warm-start state shared across a scenario-family sweep.
//!
//! Running a family of related verification problems as N independent cold
//! runs repeats three expensive, *deterministic* computations:
//!
//! 1. **query compilation** — DNF conversion, CSE tape lowering, and
//!    symbolic differentiation of every δ-SAT query (family members sharing
//!    dynamics re-derive structurally identical queries),
//! 2. **seed-trace simulation** — members sharing dynamics, initial set,
//!    seed, and simulation parameters integrate exactly the same
//!    trajectories,
//! 3. **candidate synthesis** — the LP over identical constraint rows has
//!    one solution, re-solved per member.
//!
//! A [`WarmStart`] memoizes all three behind 128-bit structural identity
//! keys ([`Fingerprint`]).  Every entry is a pure function of its key, so a
//! hit returns *bit-identical* data to recomputation: verdicts, witnesses,
//! certificates, solver statistics, and therefore whole batch reports are
//! byte-identical with warm start on or off, at any thread count.  (The
//! differential tests in `tests/family_warm_start.rs` assert this.)
//!
//! The struct is `Sync`: a sweep shares one instance across its scenario
//! workers (entries are published under short-lived mutexes and read through
//! `Arc`s).
//!
//! With [`WarmStart::with_store`], the trace and candidate layers are
//! additionally backed by an on-disk content-addressed
//! [`DiskStore`] under the same fingerprint keys, so the
//! memos survive the process: a resident verification server (or repeated
//! CLI runs over one `--store` directory) re-reads earlier bundles instead
//! of recomputing them.  The compiled-query layer stays in-memory only —
//! evaluation tapes are not serialized — but the whole-outcome store in
//! [`VerificationSession`](crate::VerificationSession) makes recompilation
//! moot for repeated requests.
//!
//! # Examples
//!
//! ```
//! use nncps_barrier::{
//!     ClosedLoopSystem, SafetySpec, VerificationRequest, VerificationSession,
//! };
//! use nncps_expr::Expr;
//! use nncps_interval::IntervalBox;
//! use nncps_sim::ExprDynamics;
//!
//! let plant = ExprDynamics::new(vec![-Expr::var(0), -Expr::var(1)]);
//! let spec = SafetySpec::rectangular(
//!     IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
//!     IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
//! );
//! let system = ClosedLoopSystem::from_dynamics(&plant, spec);
//! let session = VerificationSession::new();
//! let cold = session.verify(&VerificationRequest::over(&system).cold());
//! let first = session.verify(&VerificationRequest::over(&system));
//! // A second request differing only in δ-SAT precision still shares the
//! // seed-trace bundle and the first LP candidate through the warm layers.
//! let config = nncps_barrier::VerificationConfig {
//!     delta: 2e-4,
//!     ..nncps_barrier::VerificationConfig::default()
//! };
//! let varied = session.verify(&VerificationRequest::over(&system).with_config(config));
//! assert!(cold.is_certified() && first.is_certified() && varied.is_certified());
//! assert!(session.stats().warm.trace_hits >= 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use nncps_deltasat::CompilationCache;
use nncps_expr::Fingerprint;
use nncps_sim::Trace;

use crate::session::{decode_generator, encode_generator};
use crate::store::{DiskStore, PayloadReader, PayloadWriter};
use crate::{GeneratorFunction, SynthesisError};

/// Hit/miss counters of every warm-start layer (reporting only — the
/// counters never influence results).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStartStats {
    /// δ-SAT queries served from the compilation cache.
    pub formula_hits: usize,
    /// δ-SAT queries compiled (cache misses).
    pub formula_misses: usize,
    /// Simulation bundles (seed-trace sets, counterexample traces) reused.
    pub trace_hits: usize,
    /// Simulation bundles computed.
    pub trace_misses: usize,
    /// LP candidates served from the synthesis memo.
    pub candidate_hits: usize,
    /// LP candidates solved.
    pub candidate_misses: usize,
    /// Simulation bundles replayed from the on-disk store (counted in
    /// neither `trace_hits` nor `trace_misses`: a disk hit skips the build
    /// without touching the in-memory memo first).
    pub disk_trace_hits: usize,
    /// LP candidates replayed from the on-disk store.
    pub disk_candidate_hits: usize,
}

/// Shared memoization state for a family sweep (see the [module
/// docs](self)).
#[derive(Debug, Default)]
pub struct WarmStart {
    compilation: CompilationCache,
    traces: Mutex<HashMap<Fingerprint, Arc<Vec<Trace>>>>,
    candidates: Mutex<HashMap<Fingerprint, Arc<Result<GeneratorFunction, SynthesisError>>>>,
    store: Option<Arc<DiskStore>>,
    trace_hits: AtomicUsize,
    trace_misses: AtomicUsize,
    candidate_hits: AtomicUsize,
    candidate_misses: AtomicUsize,
    disk_trace_hits: AtomicUsize,
    disk_candidate_hits: AtomicUsize,
}

impl WarmStart {
    /// Creates empty warm-start state.
    pub fn new() -> Self {
        WarmStart::default()
    }

    /// Warm-start state whose trace and candidate layers are backed by an
    /// on-disk content-addressed store (see the [module docs](self)).
    pub fn with_store(store: Arc<DiskStore>) -> Self {
        WarmStart {
            store: Some(store),
            ..WarmStart::default()
        }
    }

    /// The δ-SAT query compilation cache.
    pub fn compilation(&self) -> &CompilationCache {
        &self.compilation
    }

    /// Returns the memoized simulation bundle for `key`, computing and
    /// publishing it with `build` on a miss.
    ///
    /// The caller owns the key discipline: `key` must cover every input of
    /// `build` (dynamics structure, initial data, integrator parameters), so
    /// that a hit is bit-identical to recomputing.
    pub fn traces_or_insert(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Vec<Trace>,
    ) -> Arc<Vec<Trace>> {
        // Poisoned locks are recovered, not propagated: every entry is a
        // pure function of its key built *outside* the lock, so a sweep
        // member that panicked while holding the map cannot leave a torn
        // entry behind — a crashed member must not poison its siblings.
        if let Some(found) = self
            .traces
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // Disk layer before recomputation: entries are pure functions of
        // their keys, so a replay is bit-identical to rebuilding.
        if let Some(store) = &self.store {
            if let Some(bundle) = store
                .load("traces", key)
                .and_then(|bytes| decode_traces(&bytes))
            {
                self.disk_trace_hits.fetch_add(1, Ordering::Relaxed);
                let built = Arc::new(bundle);
                let mut map = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
                return Arc::clone(map.entry(key).or_insert_with(|| Arc::clone(&built)));
            }
        }
        // Build outside the lock: simulation can be slow and other workers
        // should not serialize behind it.  A racing duplicate is dropped —
        // both builds are bit-identical by the key discipline.
        let built = Arc::new(build());
        self.trace_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            store.store("traces", key, &encode_traces(&built));
        }
        nncps_fault::panic_point(nncps_fault::SITE_WARMSTART_INSERT);
        let mut map = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::clone(&built)))
    }

    /// Returns the memoized candidate-synthesis result for `key`, solving
    /// and publishing it with `build` on a miss.  Same key discipline as
    /// [`WarmStart::traces_or_insert`]; the natural key is
    /// [`CandidateSynthesizer::fingerprint`](crate::CandidateSynthesizer::fingerprint).
    pub fn candidate_or_insert(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Result<GeneratorFunction, SynthesisError>,
    ) -> Arc<Result<GeneratorFunction, SynthesisError>> {
        if let Some(found) = self
            .candidates
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.candidate_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        if let Some(store) = &self.store {
            if let Some(generator) = store
                .load("candidates", key)
                .and_then(|bytes| decode_candidate(&bytes))
            {
                self.disk_candidate_hits.fetch_add(1, Ordering::Relaxed);
                let built = Arc::new(Ok(generator));
                let mut map = self
                    .candidates
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                return Arc::clone(map.entry(key).or_insert_with(|| Arc::clone(&built)));
            }
        }
        let built = Arc::new(build());
        self.candidate_misses.fetch_add(1, Ordering::Relaxed);
        // Only successful syntheses persist: a `SynthesisError` stays a
        // cheap in-memory memo (and its Display text is free to evolve).
        if let (Some(store), Ok(generator)) = (&self.store, built.as_ref()) {
            store.store("candidates", key, &encode_candidate(generator));
        }
        nncps_fault::panic_point(nncps_fault::SITE_WARMSTART_INSERT);
        let mut map = self
            .candidates
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::clone(&built)))
    }

    /// Snapshot of the hit/miss counters across all layers.
    pub fn stats(&self) -> WarmStartStats {
        WarmStartStats {
            formula_hits: self.compilation.hits(),
            formula_misses: self.compilation.misses(),
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            candidate_hits: self.candidate_hits.load(Ordering::Relaxed),
            candidate_misses: self.candidate_misses.load(Ordering::Relaxed),
            disk_trace_hits: self.disk_trace_hits.load(Ordering::Relaxed),
            disk_candidate_hits: self.disk_candidate_hits.load(Ordering::Relaxed),
        }
    }
}

// --- binary codec for persisted bundles ------------------------------------

fn encode_traces(traces: &[Trace]) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.put_usize(traces.len());
    for trace in traces {
        w.put_usize(trace.dim());
        w.put_f64_slice(trace.times());
        w.put_usize(trace.states().len());
        for state in trace.states() {
            w.put_f64_slice(state);
        }
    }
    w.finish()
}

fn decode_traces(bytes: &[u8]) -> Option<Vec<Trace>> {
    let mut r = PayloadReader::new(bytes);
    let count = r.take_usize()?;
    // Every trace carries at least its 8-byte dimension field.
    if count.checked_mul(8)? > r.remaining() {
        return None;
    }
    let traces = (0..count)
        .map(|_| {
            let dim = r.take_usize()?;
            let times = r.take_f64_vec()?;
            let num_states = r.take_usize()?;
            if num_states != times.len() {
                return None;
            }
            let states = (0..num_states)
                .map(|_| {
                    let state = r.take_f64_vec()?;
                    (state.len() == dim).then_some(state)
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Trace::from_samples(dim, times, states))
        })
        .collect::<Option<Vec<_>>>()?;
    r.is_exhausted().then_some(traces)
}

fn encode_candidate(generator: &GeneratorFunction) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    encode_generator(&mut w, generator);
    w.finish()
}

fn decode_candidate(bytes: &[u8]) -> Option<GeneratorFunction> {
    let mut r = PayloadReader::new(bytes);
    let generator = decode_generator(&mut r)?;
    r.is_exhausted().then_some(generator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_memo_hits_on_identical_keys() {
        let warm = WarmStart::new();
        let key = Fingerprint(1, 2);
        let mut builds = 0;
        let a = warm.traces_or_insert(key, || {
            builds += 1;
            vec![Trace::new(2)]
        });
        let b = warm.traces_or_insert(key, || {
            builds += 1;
            vec![Trace::new(2)]
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds, 1);
        let other = warm.traces_or_insert(Fingerprint(1, 3), Vec::new);
        assert!(other.is_empty());
        let stats = warm.stats();
        assert_eq!((stats.trace_hits, stats.trace_misses), (1, 2));
    }

    #[test]
    fn disk_backing_replays_traces_and_candidates_across_instances() {
        let root =
            std::env::temp_dir().join(format!("nncps-warmstart-test-{}-disk", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(DiskStore::open(&root).expect("store opens"));

        let warm = WarmStart::with_store(Arc::clone(&store));
        let trace_key = Fingerprint(3, 4);
        let built = warm.traces_or_insert(trace_key, || {
            vec![Trace::from_samples(
                1,
                vec![0.0, 0.5],
                vec![vec![0.25], vec![-0.125]],
            )]
        });
        let candidate_key = Fingerprint(5, 6);
        let generator = GeneratorFunction::new(
            nncps_linalg::Matrix::identity(2),
            nncps_linalg::Vector::from_vec(vec![0.5, -0.25]),
            0.125,
        );
        let _ = warm.candidate_or_insert(candidate_key, || Ok(generator.clone()));
        let error_key = Fingerprint(7, 8);
        let _ = warm.candidate_or_insert(error_key, || Err(SynthesisError::NoTraceData));

        // A fresh instance over the same store replays both layers without
        // rebuilding — this is the cross-process path a daemon restart takes.
        let fresh = WarmStart::with_store(store);
        let replayed = fresh.traces_or_insert(trace_key, || panic!("must replay from disk"));
        assert_eq!(replayed.len(), built.len());
        assert_eq!(replayed[0].times(), built[0].times());
        assert_eq!(replayed[0].states(), built[0].states());
        let candidate =
            fresh.candidate_or_insert(candidate_key, || panic!("must replay from disk"));
        assert_eq!(*candidate, Ok(generator));
        // Synthesis errors are memory-only: the fresh instance rebuilds.
        let mut rebuilt = false;
        let _ = fresh.candidate_or_insert(error_key, || {
            rebuilt = true;
            Err(SynthesisError::NoTraceData)
        });
        assert!(rebuilt);
        let stats = fresh.stats();
        assert_eq!((stats.disk_trace_hits, stats.disk_candidate_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn candidate_memo_stores_errors_too() {
        let warm = WarmStart::new();
        let key = Fingerprint(7, 7);
        let first = warm.candidate_or_insert(key, || Err(SynthesisError::NoTraceData));
        let second = warm.candidate_or_insert(key, || panic!("must not re-run"));
        assert!(Arc::ptr_eq(&first, &second));
        assert!(matches!(*second, Err(SynthesisError::NoTraceData)));
        assert_eq!(warm.stats().candidate_hits, 1);
        assert_eq!(warm.stats().candidate_misses, 1);
    }
}
