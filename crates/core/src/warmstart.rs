//! Warm-start state shared across a scenario-family sweep.
//!
//! Running a family of related verification problems as N independent cold
//! runs repeats three expensive, *deterministic* computations:
//!
//! 1. **query compilation** — DNF conversion, CSE tape lowering, and
//!    symbolic differentiation of every δ-SAT query (family members sharing
//!    dynamics re-derive structurally identical queries),
//! 2. **seed-trace simulation** — members sharing dynamics, initial set,
//!    seed, and simulation parameters integrate exactly the same
//!    trajectories,
//! 3. **candidate synthesis** — the LP over identical constraint rows has
//!    one solution, re-solved per member.
//!
//! A [`WarmStart`] memoizes all three behind 128-bit structural identity
//! keys ([`Fingerprint`]).  Every entry is a pure function of its key, so a
//! hit returns *bit-identical* data to recomputation: verdicts, witnesses,
//! certificates, solver statistics, and therefore whole batch reports are
//! byte-identical with warm start on or off, at any thread count.  (The
//! differential tests in `tests/family_warm_start.rs` assert this.)
//!
//! The struct is `Sync`: a sweep shares one instance across its scenario
//! workers (entries are published under short-lived mutexes and read through
//! `Arc`s).
//!
//! # Examples
//!
//! ```
//! use nncps_barrier::{SafetySpec, Verifier, WarmStart};
//! use nncps_expr::Expr;
//! use nncps_interval::IntervalBox;
//! use nncps_sim::ExprDynamics;
//!
//! let warm = WarmStart::new();
//! let plant = ExprDynamics::new(vec![-Expr::var(0), -Expr::var(1)]);
//! let spec = SafetySpec::rectangular(
//!     IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
//!     IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
//! );
//! let verifier = Verifier::default();
//! let system = nncps_barrier::ClosedLoopSystem::from_dynamics(&plant, spec);
//! let cold = verifier.verify(&system);
//! let first = verifier.verify_with_warm_start(&system, Some(&warm));
//! let second = verifier.verify_with_warm_start(&system, Some(&warm));
//! // All three runs certify the same certificate; the second warm run hits
//! // every memo table.
//! assert!(cold.is_certified() && first.is_certified() && second.is_certified());
//! assert!(warm.stats().candidate_hits >= 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use nncps_deltasat::CompilationCache;
use nncps_expr::Fingerprint;
use nncps_sim::Trace;

use crate::{GeneratorFunction, SynthesisError};

/// Hit/miss counters of every warm-start layer (reporting only — the
/// counters never influence results).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStartStats {
    /// δ-SAT queries served from the compilation cache.
    pub formula_hits: usize,
    /// δ-SAT queries compiled (cache misses).
    pub formula_misses: usize,
    /// Simulation bundles (seed-trace sets, counterexample traces) reused.
    pub trace_hits: usize,
    /// Simulation bundles computed.
    pub trace_misses: usize,
    /// LP candidates served from the synthesis memo.
    pub candidate_hits: usize,
    /// LP candidates solved.
    pub candidate_misses: usize,
}

/// Shared memoization state for a family sweep (see the [module
/// docs](self)).
#[derive(Debug, Default)]
pub struct WarmStart {
    compilation: CompilationCache,
    traces: Mutex<HashMap<Fingerprint, Arc<Vec<Trace>>>>,
    candidates: Mutex<HashMap<Fingerprint, Arc<Result<GeneratorFunction, SynthesisError>>>>,
    trace_hits: AtomicUsize,
    trace_misses: AtomicUsize,
    candidate_hits: AtomicUsize,
    candidate_misses: AtomicUsize,
}

impl WarmStart {
    /// Creates empty warm-start state.
    pub fn new() -> Self {
        WarmStart::default()
    }

    /// The δ-SAT query compilation cache.
    pub fn compilation(&self) -> &CompilationCache {
        &self.compilation
    }

    /// Returns the memoized simulation bundle for `key`, computing and
    /// publishing it with `build` on a miss.
    ///
    /// The caller owns the key discipline: `key` must cover every input of
    /// `build` (dynamics structure, initial data, integrator parameters), so
    /// that a hit is bit-identical to recomputing.
    pub fn traces_or_insert(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Vec<Trace>,
    ) -> Arc<Vec<Trace>> {
        // Poisoned locks are recovered, not propagated: every entry is a
        // pure function of its key built *outside* the lock, so a sweep
        // member that panicked while holding the map cannot leave a torn
        // entry behind — a crashed member must not poison its siblings.
        if let Some(found) = self
            .traces
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // Build outside the lock: simulation can be slow and other workers
        // should not serialize behind it.  A racing duplicate is dropped —
        // both builds are bit-identical by the key discipline.
        let built = Arc::new(build());
        self.trace_misses.fetch_add(1, Ordering::Relaxed);
        nncps_fault::panic_point(nncps_fault::SITE_WARMSTART_INSERT);
        let mut map = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::clone(&built)))
    }

    /// Returns the memoized candidate-synthesis result for `key`, solving
    /// and publishing it with `build` on a miss.  Same key discipline as
    /// [`WarmStart::traces_or_insert`]; the natural key is
    /// [`CandidateSynthesizer::fingerprint`](crate::CandidateSynthesizer::fingerprint).
    pub fn candidate_or_insert(
        &self,
        key: Fingerprint,
        build: impl FnOnce() -> Result<GeneratorFunction, SynthesisError>,
    ) -> Arc<Result<GeneratorFunction, SynthesisError>> {
        if let Some(found) = self
            .candidates
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.candidate_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        let built = Arc::new(build());
        self.candidate_misses.fetch_add(1, Ordering::Relaxed);
        nncps_fault::panic_point(nncps_fault::SITE_WARMSTART_INSERT);
        let mut map = self
            .candidates
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(key).or_insert_with(|| Arc::clone(&built)))
    }

    /// Snapshot of the hit/miss counters across all layers.
    pub fn stats(&self) -> WarmStartStats {
        WarmStartStats {
            formula_hits: self.compilation.hits(),
            formula_misses: self.compilation.misses(),
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            candidate_hits: self.candidate_hits.load(Ordering::Relaxed),
            candidate_misses: self.candidate_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_memo_hits_on_identical_keys() {
        let warm = WarmStart::new();
        let key = Fingerprint(1, 2);
        let mut builds = 0;
        let a = warm.traces_or_insert(key, || {
            builds += 1;
            vec![Trace::new(2)]
        });
        let b = warm.traces_or_insert(key, || {
            builds += 1;
            vec![Trace::new(2)]
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds, 1);
        let other = warm.traces_or_insert(Fingerprint(1, 3), Vec::new);
        assert!(other.is_empty());
        let stats = warm.stats();
        assert_eq!((stats.trace_hits, stats.trace_misses), (1, 2));
    }

    #[test]
    fn candidate_memo_stores_errors_too() {
        let warm = WarmStart::new();
        let key = Fingerprint(7, 7);
        let first = warm.candidate_or_insert(key, || Err(SynthesisError::NoTraceData));
        let second = warm.candidate_or_insert(key, || panic!("must not re-run"));
        assert!(Arc::ptr_eq(&first, &second));
        assert!(matches!(*second, Err(SynthesisError::NoTraceData)));
        assert_eq!(warm.stats().candidate_hits, 1);
        assert_eq!(warm.stats().candidate_misses, 1);
    }
}
