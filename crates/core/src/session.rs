//! The unified request/session verification API.
//!
//! Earlier revisions grew a cross-product of `Verifier::verify_*` methods
//! (plain × warm-start × governed × dynamics source).  This module collapses
//! them into one path:
//!
//! * [`VerificationRequest`] — a builder bundling *what* to verify (a
//!   [`ClosedLoopSystem`], borrowed or built from any symbolic plant) with
//!   *how* (a [`VerificationConfig`], a resource [`Budget`], and whether
//!   session caches may be consulted).
//! * [`VerificationSession`] — owns the caches that outlive a single
//!   request: the [`WarmStart`] memo layers (compiled δ-SAT queries,
//!   seed-trace bundles, LP candidates), a whole-outcome memo, and an
//!   optional on-disk [`DiskStore`] that extends all of it across
//!   *processes*.  [`VerificationSession::verify`] is the **only** public
//!   verify entry point.
//!
//! # Key discipline
//!
//! The outcome memo is keyed by [`VerificationRequest::fingerprint`], which
//! covers every bit-relevant input of a run: the vector-field DAG, the full
//! safety specification, every result-affecting configuration field, and
//! the budget's deterministic fuel state.  Bit-*invisible* knobs —
//! simulation worker threads, batched sibling evaluation — are deliberately
//! excluded, so runs that provably produce identical bits share one entry.
//! Requests whose budget can trip non-deterministically (wall-clock
//! deadline, cancellation, forced exhaustion) are never memoized, and
//! outcomes that stopped for a non-deterministic reason are never stored.
//!
//! # Examples
//!
//! ```
//! use nncps_barrier::{
//!     ClosedLoopSystem, SafetySpec, VerificationRequest, VerificationSession,
//! };
//! use nncps_expr::Expr;
//! use nncps_interval::IntervalBox;
//!
//! let system = ClosedLoopSystem::new(
//!     vec![-Expr::var(0), -Expr::var(1)],
//!     SafetySpec::rectangular(
//!         IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
//!         IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
//!     ),
//! );
//! let session = VerificationSession::new();
//! let outcome = session.verify(&VerificationRequest::over(&system));
//! assert!(outcome.is_certified());
//! // An identical request is served from the whole-outcome memo.
//! let again = session.verify(&VerificationRequest::over(&system));
//! assert!(again.is_certified());
//! assert_eq!(session.stats().outcome_hits, 1);
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use nncps_deltasat::{Budget, ExhaustionReason, SolverStats};
use nncps_expr::{Fingerprint, StructuralHasher};
use nncps_linalg::{Matrix, Vector};
use nncps_sim::SymbolicDynamics;

use crate::pipeline::{StageTimings, VerificationStats};
use crate::store::{DiskStore, PayloadReader, PayloadWriter};
use crate::warmstart::WarmStartStats;
use crate::{
    BarrierCertificate, ClosedLoopSystem, GeneratorFunction, SafetySpec, VerificationConfig,
    VerificationOutcome, Verifier, WarmStart,
};

/// One verification problem plus everything governing how it runs.
///
/// Built with [`VerificationRequest::over`] (borrowing a prepared
/// [`ClosedLoopSystem`]) or [`VerificationRequest::over_dynamics`] (closing
/// the loop over any symbolic plant), then refined with the builder
/// methods.  Defaults: [`VerificationConfig::default`], an unlimited
/// [`Budget`], session caches enabled.
#[derive(Debug, Clone)]
pub struct VerificationRequest<'a> {
    system: Cow<'a, ClosedLoopSystem>,
    config: VerificationConfig,
    budget: Budget,
    reuse: bool,
}

impl<'a> VerificationRequest<'a> {
    /// A request over a prepared closed-loop system (borrowed).
    pub fn over(system: &'a ClosedLoopSystem) -> Self {
        VerificationRequest {
            system: Cow::Borrowed(system),
            config: VerificationConfig::default(),
            budget: Budget::unlimited(),
            reuse: true,
        }
    }

    /// A request that closes the loop over any symbolic plant paired with a
    /// safety specification (the scenario-generic entry point).
    ///
    /// # Panics
    ///
    /// Panics if the plant dimension differs from the specification
    /// dimension.
    pub fn over_dynamics<D: SymbolicDynamics>(
        plant: &D,
        spec: &SafetySpec,
    ) -> VerificationRequest<'static> {
        VerificationRequest {
            system: Cow::Owned(ClosedLoopSystem::from_dynamics(plant, spec.clone())),
            config: VerificationConfig::default(),
            budget: Budget::unlimited(),
            reuse: true,
        }
    }

    /// Replaces the pipeline configuration.
    pub fn with_config(mut self, config: VerificationConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a resource [`Budget`] (cloned handles share state, so the
    /// caller keeps cancellation and fuel observation).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Disables every session cache for this request: the run is executed
    /// from scratch and its outcome is not recorded.  The differential
    /// tests use this to pin warm ≡ cold bit-identity.
    pub fn cold(mut self) -> Self {
        self.reuse = false;
        self
    }

    /// The closed-loop system under verification.
    pub fn system(&self) -> &ClosedLoopSystem {
        &self.system
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &VerificationConfig {
        &self.config
    }

    /// The resource budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Whether session caches are bypassed (see
    /// [`VerificationRequest::cold`]).
    pub fn is_cold(&self) -> bool {
        !self.reuse
    }

    /// The 128-bit structural identity of this request — the key of the
    /// whole-outcome memo and of the on-disk store (see the [module
    /// docs](self) for what it covers and what it deliberately omits).
    ///
    /// Fuel is part of the identity *as observed now*: a shared budget that
    /// has already burned fuel names a different remaining-resource problem
    /// than a fresh one.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut hasher = StructuralHasher::new();
        hasher.write_u8(0x30);
        for component in self.system.vector_field() {
            hasher.write_expr(component);
        }
        let spec = self.system.spec();
        hasher.write_usize(spec.dim());
        for interval in spec.initial_set().iter() {
            hasher.write_f64(interval.lo());
            hasher.write_f64(interval.hi());
        }
        for interval in spec.domain().iter() {
            hasher.write_f64(interval.lo());
            hasher.write_f64(interval.hi());
        }
        hasher.write_usize(spec.unsafe_halfspaces().len());
        for halfspace in spec.unsafe_halfspaces() {
            for &n in halfspace.normal() {
                hasher.write_f64(n);
            }
            hasher.write_f64(halfspace.offset());
        }
        // Bit-relevant configuration.  `threads` and
        // `smt_batched_evaluation` are excluded: both are documented (and
        // differentially tested) as bit-invisible.
        let cfg = &self.config;
        hasher.write_usize(cfg.num_seed_traces);
        hasher.write_f64(cfg.sim_dt);
        hasher.write_f64(cfg.sim_duration);
        hasher.write_f64(cfg.gamma);
        hasher.write_f64(cfg.delta);
        hasher.write_usize(cfg.max_smt_boxes);
        hasher.write_usize(cfg.max_candidate_iterations);
        hasher.write_usize(cfg.max_level_iterations);
        hasher.write_usize(cfg.max_samples_per_trace);
        hasher.write_u64(cfg.seed);
        hasher.write_usize(cfg.smt_threads);
        hasher.write_f64(cfg.synthesis.positivity_margin);
        hasher.write_f64(cfg.synthesis.decrease_margin);
        hasher.write_f64(cfg.synthesis.coefficient_bound);
        hasher.write_f64(cfg.synthesis.diagonal_floor);
        hasher.write_f64(cfg.synthesis.cross_term_ratio);
        hasher.write_f64(cfg.synthesis.margin_cap);
        // Deterministic budget state: a fuel limit changes where the run
        // stops, and fuel already burned changes what remains.
        match self.budget.fuel_limit() {
            Some(limit) => {
                hasher.write_u8(1);
                hasher.write_u64(limit);
                hasher.write_u64(self.budget.fuel_used());
            }
            None => hasher.write_u8(0),
        }
        hasher.finish()
    }
}

/// Hit/miss counters of a [`VerificationSession`] (reporting only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests served from the in-memory whole-outcome memo.
    pub outcome_hits: usize,
    /// Requests that ran the pipeline.
    pub outcome_misses: usize,
    /// Requests served from the on-disk store (a subset of neither counter:
    /// a disk hit skips the pipeline without touching the in-memory memo
    /// miss count).
    pub disk_outcome_hits: usize,
    /// The underlying warm-start layer counters.
    pub warm: WarmStartStats,
}

/// Long-lived verification state: warm-start memo layers, a whole-outcome
/// memo, and an optional on-disk store (see the [module docs](self)).
///
/// The session is `Sync`; a sweep or server shares one instance across its
/// workers.
#[derive(Debug)]
pub struct VerificationSession {
    warm: Arc<WarmStart>,
    outcomes: Mutex<HashMap<Fingerprint, Arc<VerificationOutcome>>>,
    store: Option<Arc<DiskStore>>,
    outcome_hits: AtomicUsize,
    outcome_misses: AtomicUsize,
    disk_outcome_hits: AtomicUsize,
}

impl Default for VerificationSession {
    fn default() -> Self {
        VerificationSession::new()
    }
}

impl VerificationSession {
    /// A session with in-memory caches only.
    pub fn new() -> Self {
        VerificationSession {
            warm: Arc::new(WarmStart::new()),
            outcomes: Mutex::new(HashMap::new()),
            store: None,
            outcome_hits: AtomicUsize::new(0),
            outcome_misses: AtomicUsize::new(0),
            disk_outcome_hits: AtomicUsize::new(0),
        }
    }

    /// A session whose caches are additionally backed by an on-disk
    /// content-addressed store: outcomes, seed-trace bundles, and LP
    /// candidates persist across processes.
    pub fn with_store(store: Arc<DiskStore>) -> Self {
        VerificationSession {
            warm: Arc::new(WarmStart::with_store(Arc::clone(&store))),
            outcomes: Mutex::new(HashMap::new()),
            store: Some(store),
            outcome_hits: AtomicUsize::new(0),
            outcome_misses: AtomicUsize::new(0),
            disk_outcome_hits: AtomicUsize::new(0),
        }
    }

    /// The warm-start memo layers shared by this session's requests.
    pub fn warm_start(&self) -> &WarmStart {
        &self.warm
    }

    /// The on-disk store, when this session has one.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            outcome_hits: self.outcome_hits.load(Ordering::Relaxed),
            outcome_misses: self.outcome_misses.load(Ordering::Relaxed),
            disk_outcome_hits: self.disk_outcome_hits.load(Ordering::Relaxed),
            warm: self.warm.stats(),
        }
    }

    /// Runs one verification request — the single public verify entry
    /// point.
    ///
    /// A cold request runs the pipeline from scratch.  A cacheable request
    /// first consults the whole-outcome memo, then the on-disk store, and
    /// only then runs the pipeline over the session's warm-start layers;
    /// every cached artifact is a pure function of its key, so the returned
    /// outcome is bit-identical to a cold run (only wall-clock timings in
    /// [`VerificationStats::timings`](crate::VerificationStats) reflect
    /// whichever run actually executed).
    pub fn verify(&self, request: &VerificationRequest<'_>) -> VerificationOutcome {
        let verifier = Verifier::new(request.config().clone());
        let budget = request.budget();
        if request.is_cold() {
            return verifier.run(request.system(), None, budget);
        }
        // A deadline or cancellation can trip at a wall-clock-dependent
        // point, and forced exhaustion is fault injection: none of them
        // name a deterministic outcome, so such requests bypass the
        // outcome memo (the inner warm-start layers stay safe — their
        // bundles are built ungoverned).
        let memoizable = !budget.has_deadline() && !budget.is_cancelled() && !budget.fuel_forced();
        if !memoizable {
            return verifier.run(request.system(), Some(&self.warm), budget);
        }
        let key = request.fingerprint();
        if let Some(found) = self
            .outcomes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            self.outcome_hits.fetch_add(1, Ordering::Relaxed);
            return (**found).clone();
        }
        if let Some(store) = &self.store {
            if let Some(outcome) = store
                .load("outcome", key)
                .and_then(|bytes| decode_outcome(&bytes))
            {
                self.disk_outcome_hits.fetch_add(1, Ordering::Relaxed);
                let outcome = Arc::new(outcome);
                let mut memo = self.outcomes.lock().unwrap_or_else(PoisonError::into_inner);
                let kept = memo.entry(key).or_insert_with(|| Arc::clone(&outcome));
                return (**kept).clone();
            }
        }
        self.outcome_misses.fetch_add(1, Ordering::Relaxed);
        let outcome = verifier.run(request.system(), Some(&self.warm), budget);
        // Outcomes that stopped for a non-deterministic reason (deadline,
        // cancellation mid-run via a cloned handle, box budgets are fine)
        // must not be replayed to later identical requests.
        let storable = outcome
            .stats()
            .exhaustion
            .as_ref()
            .is_none_or(ExhaustionReason::is_deterministic);
        if storable {
            let shared = Arc::new(outcome.clone());
            self.outcomes
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key)
                .or_insert(shared);
            if let Some(store) = &self.store {
                store.store("outcome", key, &encode_outcome(&outcome));
            }
        }
        outcome
    }
}

// --- binary codec for persisted outcomes -----------------------------------

/// Serializes an outcome for the on-disk store.  Bit-exact: every `f64`
/// travels via its bit pattern, and `GeneratorFunction::new`'s
/// re-symmetrization `(a + a) / 2` is exact for the already-symmetric
/// stored matrix.
pub(crate) fn encode_outcome(outcome: &VerificationOutcome) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    match outcome {
        VerificationOutcome::Certified { certificate, stats } => {
            w.put_u8(1);
            encode_generator(&mut w, certificate.generator());
            w.put_f64(certificate.level());
            encode_stats(&mut w, stats);
        }
        VerificationOutcome::Inconclusive { reason, stats } => {
            w.put_u8(0);
            w.put_str(reason);
            encode_stats(&mut w, stats);
        }
    }
    w.finish()
}

/// Inverse of [`encode_outcome`]; `None` on any structural mismatch (the
/// store then quarantines nothing further — a decode failure is simply a
/// miss, the entry's checksum already passed).
pub(crate) fn decode_outcome(bytes: &[u8]) -> Option<VerificationOutcome> {
    let mut r = PayloadReader::new(bytes);
    let outcome = match r.take_u8()? {
        1 => {
            let generator = decode_generator(&mut r)?;
            let level = r.take_f64()?;
            let stats = decode_stats(&mut r)?;
            VerificationOutcome::Certified {
                certificate: BarrierCertificate::new(generator, level),
                stats,
            }
        }
        0 => {
            let reason = r.take_str()?;
            let stats = decode_stats(&mut r)?;
            VerificationOutcome::Inconclusive { reason, stats }
        }
        _ => return None,
    };
    r.is_exhausted().then_some(outcome)
}

pub(crate) fn encode_generator(w: &mut PayloadWriter, generator: &GeneratorFunction) {
    let n = generator.dim();
    w.put_usize(n);
    for i in 0..n {
        for j in 0..n {
            w.put_f64(generator.quadratic_part()[(i, j)]);
        }
    }
    for i in 0..n {
        w.put_f64(generator.linear_part()[i]);
    }
    w.put_f64(generator.constant_part());
}

pub(crate) fn decode_generator(r: &mut PayloadReader<'_>) -> Option<GeneratorFunction> {
    let n = r.take_usize()?;
    if n == 0 || n.checked_mul(n)?.checked_mul(8)? > r.remaining() {
        return None;
    }
    let p: Vec<f64> = (0..n * n).map(|_| r.take_f64()).collect::<Option<_>>()?;
    let q: Vec<f64> = (0..n).map(|_| r.take_f64()).collect::<Option<_>>()?;
    let c = r.take_f64()?;
    Some(GeneratorFunction::new(
        Matrix::from_row_major(n, n, p),
        Vector::from_vec(q),
        c,
    ))
}

fn encode_stats(w: &mut PayloadWriter, stats: &VerificationStats) {
    w.put_usize(stats.generator_iterations);
    w.put_usize(stats.lp_solves);
    w.put_usize(stats.smt_decrease_checks);
    w.put_usize(stats.counterexamples);
    w.put_usize(stats.level_iterations);
    let s = &stats.solver;
    w.put_usize(s.boxes_explored);
    w.put_usize(s.boxes_pruned);
    w.put_usize(s.bisections);
    w.put_usize(s.clauses_examined);
    w.put_usize(s.instructions_executed);
    w.put_usize(s.specialized_tape_len_sum);
    w.put_usize(s.newton_cuts);
    w.put_usize(stats.counterexample_witnesses.len());
    for witness in &stats.counterexample_witnesses {
        w.put_f64_slice(witness);
    }
    w.put_usize(stats.counterexample_candidates.len());
    for candidate in &stats.counterexample_candidates {
        w.put_f64_slice(candidate);
    }
    let t = &stats.timings;
    for duration in [t.simulation, t.lp, t.smt_decrease, t.level_set, t.total] {
        w.put_u64(duration.as_nanos() as u64);
    }
    match &stats.exhaustion {
        None => w.put_u8(0),
        Some(reason) => {
            w.put_u8(1);
            w.put_str(reason.kind());
            match reason.limit() {
                Some(limit) => {
                    w.put_u8(1);
                    w.put_u64(limit);
                }
                None => w.put_u8(0),
            }
        }
    }
}

fn decode_stats(r: &mut PayloadReader<'_>) -> Option<VerificationStats> {
    let generator_iterations = r.take_usize()?;
    let lp_solves = r.take_usize()?;
    let smt_decrease_checks = r.take_usize()?;
    let counterexamples = r.take_usize()?;
    let level_iterations = r.take_usize()?;
    let solver = SolverStats {
        boxes_explored: r.take_usize()?,
        boxes_pruned: r.take_usize()?,
        bisections: r.take_usize()?,
        clauses_examined: r.take_usize()?,
        instructions_executed: r.take_usize()?,
        specialized_tape_len_sum: r.take_usize()?,
        newton_cuts: r.take_usize()?,
    };
    let witnesses = take_f64_vecs(r)?;
    let candidates = take_f64_vecs(r)?;
    let mut durations = [Duration::ZERO; 5];
    for slot in &mut durations {
        *slot = Duration::from_nanos(r.take_u64()?);
    }
    let exhaustion = match r.take_u8()? {
        0 => None,
        1 => {
            let kind = r.take_str()?;
            let limit = match r.take_u8()? {
                0 => None,
                1 => Some(r.take_u64()?),
                _ => return None,
            };
            Some(ExhaustionReason::from_parts(&kind, limit)?)
        }
        _ => return None,
    };
    Some(VerificationStats {
        generator_iterations,
        lp_solves,
        smt_decrease_checks,
        counterexamples,
        level_iterations,
        solver,
        counterexample_witnesses: witnesses,
        counterexample_candidates: candidates,
        timings: StageTimings {
            simulation: durations[0],
            lp: durations[1],
            smt_decrease: durations[2],
            level_set: durations[3],
            total: durations[4],
        },
        exhaustion,
    })
}

fn take_f64_vecs(r: &mut PayloadReader<'_>) -> Option<Vec<Vec<f64>>> {
    let count = r.take_usize()?;
    // Every element carries at least its own 8-byte length prefix.
    if count.checked_mul(8)? > r.remaining() {
        return None;
    }
    (0..count).map(|_| r.take_f64_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SafetySpec;
    use nncps_expr::Expr;
    use nncps_interval::IntervalBox;

    fn paper_style_spec() -> SafetySpec {
        SafetySpec::rectangular(
            IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
            IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
        )
    }

    fn stable_linear_system() -> ClosedLoopSystem {
        ClosedLoopSystem::new(
            vec![
                -Expr::var(0) + Expr::var(1) * 0.2,
                -Expr::var(1) - Expr::var(0) * 0.2,
            ],
            paper_style_spec(),
        )
    }

    fn assert_outcomes_bit_identical(a: &VerificationOutcome, b: &VerificationOutcome) {
        assert_eq!(a.is_certified(), b.is_certified());
        match (a.certificate(), b.certificate()) {
            (Some(ca), Some(cb)) => {
                assert_eq!(ca.generator(), cb.generator());
                assert_eq!(ca.level().to_bits(), cb.level().to_bits());
            }
            (None, None) => {}
            _ => panic!("verdicts diverged"),
        }
        assert_eq!(a.stats().solver, b.stats().solver);
        assert_eq!(
            a.stats().counterexample_witnesses,
            b.stats().counterexample_witnesses
        );
        assert_eq!(a.stats().exhaustion, b.stats().exhaustion);
    }

    #[test]
    fn fingerprint_ignores_bit_invisible_knobs_only() {
        let system = stable_linear_system();
        let base = VerificationRequest::over(&system);
        let mut threads_differ = base.config().clone();
        threads_differ.threads = 7;
        threads_differ.smt_batched_evaluation = false;
        assert_eq!(
            base.fingerprint(),
            VerificationRequest::over(&system)
                .with_config(threads_differ)
                .fingerprint(),
            "bit-invisible knobs must not split the memo key"
        );

        let mut delta_differs = base.config().clone();
        delta_differs.delta *= 2.0;
        assert_ne!(
            base.fingerprint(),
            VerificationRequest::over(&system)
                .with_config(delta_differs)
                .fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            VerificationRequest::over(&system)
                .with_budget(Budget::unlimited().with_fuel(1000))
                .fingerprint(),
            "a fuel limit names a different remaining-resource problem"
        );
        let other = ClosedLoopSystem::new(vec![-Expr::var(0), -Expr::var(1)], paper_style_spec());
        assert_ne!(
            base.fingerprint(),
            VerificationRequest::over(&other).fingerprint()
        );
    }

    #[test]
    fn repeated_requests_hit_the_outcome_memo_bit_identically() {
        let system = stable_linear_system();
        let session = VerificationSession::new();
        let first = session.verify(&VerificationRequest::over(&system));
        let second = session.verify(&VerificationRequest::over(&system));
        assert!(first.is_certified());
        assert_outcomes_bit_identical(&first, &second);
        let stats = session.stats();
        assert_eq!((stats.outcome_hits, stats.outcome_misses), (1, 1));
    }

    #[test]
    fn cold_requests_bypass_and_match_the_session_path() {
        let system = stable_linear_system();
        let session = VerificationSession::new();
        let warm = session.verify(&VerificationRequest::over(&system));
        let cold = session.verify(&VerificationRequest::over(&system).cold());
        assert_outcomes_bit_identical(&warm, &cold);
        // The cold run left no trace in the counters.
        assert_eq!(session.stats().outcome_hits, 0);
        assert_eq!(session.stats().outcome_misses, 1);
    }

    #[test]
    fn deadline_budgets_are_never_memoized() {
        let system = stable_linear_system();
        let session = VerificationSession::new();
        let budget = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        for _ in 0..2 {
            let request = VerificationRequest::over(&system).with_budget(budget.clone());
            let outcome = session.verify(&request);
            assert!(outcome.is_certified());
        }
        let stats = session.stats();
        assert_eq!((stats.outcome_hits, stats.outcome_misses), (0, 0));
    }

    #[test]
    fn disk_store_replays_outcomes_across_sessions() {
        let root =
            std::env::temp_dir().join(format!("nncps-session-test-{}-replay", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let system = stable_linear_system();

        let store = Arc::new(DiskStore::open(&root).expect("store opens"));
        let first_session = VerificationSession::with_store(Arc::clone(&store));
        let first = first_session.verify(&VerificationRequest::over(&system));
        assert!(first.is_certified());
        assert!(store.stats().writes > 0, "outcome must be persisted");
        drop(first_session);

        // A brand-new process-like session over the same root: the outcome
        // comes back from disk, bit-identical, without running the pipeline.
        let store = Arc::new(DiskStore::open(&root).expect("store reopens"));
        let second_session = VerificationSession::with_store(store);
        let second = second_session.verify(&VerificationRequest::over(&system));
        assert_outcomes_bit_identical(&first, &second);
        let stats = second_session.stats();
        assert_eq!(stats.disk_outcome_hits, 1);
        assert_eq!(stats.outcome_misses, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn outcome_codec_round_trips_both_variants() {
        let stats = VerificationStats {
            generator_iterations: 3,
            lp_solves: 3,
            smt_decrease_checks: 3,
            counterexamples: 2,
            level_iterations: 5,
            solver: SolverStats {
                boxes_explored: 100,
                boxes_pruned: 90,
                bisections: 40,
                clauses_examined: 7,
                instructions_executed: 12345,
                specialized_tape_len_sum: 999,
                newton_cuts: 3,
            },
            counterexample_witnesses: vec![vec![0.1, -0.2], vec![f64::MIN_POSITIVE, -0.0]],
            counterexample_candidates: vec![vec![1.0; 7], vec![2.0; 7]],
            timings: StageTimings {
                simulation: Duration::from_micros(11),
                lp: Duration::from_micros(22),
                smt_decrease: Duration::from_micros(33),
                level_set: Duration::from_micros(44),
                total: Duration::from_micros(110),
            },
            exhaustion: Some(ExhaustionReason::Fuel(5000)),
        };
        let generator = GeneratorFunction::new(
            Matrix::from_row_major(2, 2, vec![1.5, 0.25, 0.25, 2.5]),
            Vector::from_vec(vec![-0.5, 0.75]),
            0.125,
        );
        let certified = VerificationOutcome::Certified {
            certificate: BarrierCertificate::new(generator, 1.75),
            stats: stats.clone(),
        };
        let decoded = decode_outcome(&encode_outcome(&certified)).expect("decodes");
        assert_outcomes_bit_identical(&certified, &decoded);
        assert_eq!(decoded.stats(), &stats);

        let inconclusive = VerificationOutcome::Inconclusive {
            reason: "level-set selection failed: no admissible level".to_string(),
            stats,
        };
        let decoded = decode_outcome(&encode_outcome(&inconclusive)).expect("decodes");
        match &decoded {
            VerificationOutcome::Inconclusive { reason, .. } => {
                assert!(reason.contains("no admissible level"));
            }
            VerificationOutcome::Certified { .. } => panic!("variant flipped"),
        }

        // Truncation and trailing garbage both decode to a miss.
        let bytes = encode_outcome(&certified);
        assert!(decode_outcome(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_outcome(&padded).is_none());
    }
}
