//! Level-set selection: finding `ℓ` such that `X0 ⊆ {W ≤ ℓ}` and
//! `{W ≤ ℓ} ∩ U = ∅`.

use nncps_deltasat::{CompiledFormula, DeltaSolver, ExhaustionReason, SatResult, SolverStats};
use nncps_linalg::{Matrix, Vector};

use crate::{GeneratorFunction, QueryBuilder, SafetySpec};

/// Outcome of the level-set search.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelSetResult {
    /// A level was found and both SMT queries (6) and (7) returned UNSAT.
    Found {
        /// The selected level `ℓ`.
        level: f64,
        /// Number of candidate levels examined.
        iterations: usize,
    },
    /// No admissible level exists for this generator function (the geometric
    /// bracket is empty) or the iteration budget was exhausted.
    NotFound {
        /// Human-readable explanation.
        reason: String,
        /// Number of candidate levels examined.
        iterations: usize,
    },
}

impl LevelSetResult {
    /// The selected level, if one was found.
    pub fn level(&self) -> Option<f64> {
        match self {
            LevelSetResult::Found { level, .. } => Some(*level),
            LevelSetResult::NotFound { .. } => None,
        }
    }
}

/// Selects a level-set size `ℓ` for a candidate generator function, following
/// Section 3 of the paper:
///
/// 1. geometrically bracket the admissible levels — `ℓ` must be at least the
///    maximum of `W` over the vertices of the rectangular `X0`, and at most
///    the minimum of `W` over each hyperplane bounding the unsafe halfspaces,
/// 2. pick a candidate in the bracket and confirm it with the two δ-SAT
///    queries (6) and (7), adjusting by bisection on a SAT answer.
#[derive(Debug, Clone)]
pub struct LevelSetSelector {
    max_iterations: usize,
    margin: f64,
}

impl LevelSetSelector {
    /// Creates a selector that tries at most `max_iterations` candidate levels.
    pub fn new(max_iterations: usize) -> Self {
        LevelSetSelector {
            max_iterations: max_iterations.max(1),
            margin: 1e-6,
        }
    }

    /// Geometric bracket `(ℓ_min, ℓ_max)` of admissible levels, or `None` when
    /// the generator function cannot separate `X0` from `U` (bracket empty or
    /// quadratic part not positive definite).
    pub fn bracket(&self, generator: &GeneratorFunction, spec: &SafetySpec) -> Option<(f64, f64)> {
        if !generator.is_positive_definite(1e-12) {
            return None;
        }
        // Lower bound: W is convex, so its maximum over the rectangle X0 is
        // attained at a vertex.
        let lower = spec
            .initial_set()
            .corners()
            .iter()
            .map(|corner| generator.evaluate(corner))
            .fold(f64::NEG_INFINITY, f64::max);
        // Upper bound: the sublevel set must not reach any unsafe halfspace.
        // For each halfspace {a·x >= b} the critical level is the minimum of W
        // on the bounding hyperplane {a·x = b} (if the global minimizer of W
        // already lies in the halfspace no level works).
        let mut upper = f64::INFINITY;
        for halfspace in spec.unsafe_halfspaces() {
            let minimizer = generator.minimizer()?;
            if halfspace.contains(&minimizer) {
                return None;
            }
            let critical = constrained_minimum(generator, halfspace.normal(), halfspace.offset())?;
            upper = upper.min(critical);
        }
        if upper <= lower + self.margin {
            None
        } else {
            Some((lower, upper))
        }
    }

    /// Runs the full selection: bracket, then bisection confirmed by the SMT
    /// queries (6) and (7).
    pub fn select(
        &self,
        generator: &GeneratorFunction,
        spec: &SafetySpec,
        queries: &QueryBuilder<'_>,
        solver: &DeltaSolver,
    ) -> LevelSetResult {
        self.select_with_stats(generator, spec, queries, solver).0
    }

    /// Like [`LevelSetSelector::select`], but also returns the accumulated
    /// δ-SAT search statistics of all confirmation queries (6) and (7), so
    /// the pipeline can surface the total solver effort in its run report.
    pub fn select_with_stats(
        &self,
        generator: &GeneratorFunction,
        spec: &SafetySpec,
        queries: &QueryBuilder<'_>,
        solver: &DeltaSolver,
    ) -> (LevelSetResult, SolverStats) {
        self.select_with_cache(generator, spec, queries, solver, None)
    }

    /// Like [`LevelSetSelector::select_with_stats`], but compiles the
    /// confirmation queries through a
    /// [`CompilationCache`](nncps_deltasat::CompilationCache) when one is given
    /// — a family sweep re-confirms structurally identical levels across
    /// members, and the cached artifacts solve bit-identically to fresh
    /// compilations.
    pub fn select_with_cache(
        &self,
        generator: &GeneratorFunction,
        spec: &SafetySpec,
        queries: &QueryBuilder<'_>,
        solver: &DeltaSolver,
        cache: Option<&nncps_deltasat::CompilationCache>,
    ) -> (LevelSetResult, SolverStats) {
        let compile = |formula: &nncps_deltasat::Formula| match cache {
            Some(cache) => cache.compile(formula),
            None => {
                let compiled = CompiledFormula::compile(formula);
                // Gradient bundles (for the solver's derivative-guided cuts)
                // of the quadratic W are tiny; build them with the tape.
                compiled.ensure_gradients();
                std::sync::Arc::new(compiled)
            }
        };
        let mut stats = SolverStats::default();
        let Some((mut low, mut high)) = self.bracket(generator, spec) else {
            return (
                LevelSetResult::NotFound {
                    reason: "no admissible level separates X0 from the unsafe set".to_string(),
                    iterations: 0,
                },
                stats,
            );
        };
        // Start in the middle of the bracket: maximal slack on both sides.
        for iteration in 1..=self.max_iterations {
            // Cooperative governance poll at the bisection loop head: the
            // solver's budget is shared with the whole verification run, so
            // a cancellation, expired deadline, or fuel exhaustion from an
            // earlier query stops the search before issuing another one.
            if let Some(reason) = solver.budget().check() {
                return (
                    LevelSetResult::NotFound {
                        reason: format!("level-set search stopped: {reason}"),
                        iterations: iteration - 1,
                    },
                    stats,
                );
            }
            let level = 0.5 * (low + high);
            // Query (6): is some initial state outside the sublevel set?
            // Both confirmation queries are compiled to evaluation tapes
            // before solving, like every other query the pipeline issues.
            let (q6, x0_domain) = queries.initial_containment_query(generator, level);
            let q6 = compile(&q6);
            let (q6_result, q6_stats) = solver.solve_compiled_with_stats(&q6, &x0_domain);
            stats.merge(&q6_stats);
            if let Some(reason) = governed_exhaustion(&q6_result) {
                return (
                    LevelSetResult::NotFound {
                        reason: format!("level-set search stopped: {reason}"),
                        iterations: iteration,
                    },
                    stats,
                );
            }
            if !q6_result.is_unsat() {
                // Level too small: move up.
                low = level;
                continue;
            }
            // Query (7): does the sublevel set intersect the unsafe region?
            let Some((q7, unsafe_domain)) = queries.unsafe_disjointness_query(generator, level)
            else {
                return (
                    LevelSetResult::NotFound {
                        reason: "sublevel sets of the candidate are unbounded".to_string(),
                        iterations: iteration,
                    },
                    stats,
                );
            };
            let q7 = compile(&q7);
            let (q7_result, q7_stats) = solver.solve_compiled_with_stats(&q7, &unsafe_domain);
            stats.merge(&q7_stats);
            if let Some(reason) = governed_exhaustion(&q7_result) {
                return (
                    LevelSetResult::NotFound {
                        reason: format!("level-set search stopped: {reason}"),
                        iterations: iteration,
                    },
                    stats,
                );
            }
            if !q7_result.is_unsat() {
                // Level too large: move down.
                high = level;
                continue;
            }
            return (
                LevelSetResult::Found {
                    level,
                    iterations: iteration,
                },
                stats,
            );
        }
        (
            LevelSetResult::NotFound {
                reason: format!(
                    "no level confirmed within {} bisection iterations",
                    self.max_iterations
                ),
                iterations: self.max_iterations,
            },
            stats,
        )
    }
}

impl Default for LevelSetSelector {
    fn default() -> Self {
        LevelSetSelector::new(30)
    }
}

/// The run-global exhaustion carried by a confirmation-query answer, if any.
///
/// A per-query box-budget `Unknown` keeps the legacy bisection treatment
/// (indistinguishable from SAT, so the search adjusts the bracket and moves
/// on — later, easier queries can still confirm a level), while fuel,
/// deadline, and cancellation are properties of the *run*: every further
/// query would return the same answer, so the search stops immediately.
fn governed_exhaustion(result: &SatResult) -> Option<ExhaustionReason> {
    match result {
        SatResult::Unknown(reason) if !matches!(reason, ExhaustionReason::Boxes(_)) => {
            Some(*reason)
        }
        _ => None,
    }
}

/// Minimum of `W(x) = xᵀPx + qᵀx + c` subject to `a·x = b`, via the KKT
/// system `[2P  a; aᵀ 0] [x; λ] = [−q; b]`.
fn constrained_minimum(generator: &GeneratorFunction, a: &[f64], b: f64) -> Option<f64> {
    let n = generator.dim();
    let p = generator.quadratic_part();
    let q = generator.linear_part();
    let mut kkt = Matrix::zeros(n + 1, n + 1);
    for i in 0..n {
        for j in 0..n {
            kkt[(i, j)] = 2.0 * p[(i, j)];
        }
        kkt[(i, n)] = a[i];
        kkt[(n, i)] = a[i];
    }
    let rhs = Vector::from_fn(n + 1, |i| if i < n { -q[i] } else { b });
    let solution = kkt.solve(&rhs).ok()?;
    let x: Vec<f64> = (0..n).map(|i| solution[i]).collect();
    Some(generator.evaluate(&x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosedLoopSystem;
    use nncps_expr::Expr;
    use nncps_interval::IntervalBox;

    fn spec() -> SafetySpec {
        SafetySpec::rectangular(
            IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
            IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
        )
    }

    fn system() -> ClosedLoopSystem {
        ClosedLoopSystem::new(vec![-Expr::var(0), -Expr::var(1)], spec())
    }

    fn circle() -> GeneratorFunction {
        GeneratorFunction::new(Matrix::identity(2), Vector::zeros(2), 0.0)
    }

    #[test]
    fn constrained_minimum_of_circle_on_line() {
        // min x^2 + y^2 s.t. x = 3  ->  9 at (3, 0).
        let value = constrained_minimum(&circle(), &[1.0, 0.0], 3.0).unwrap();
        assert!((value - 9.0).abs() < 1e-9);
        // min x^2 + y^2 s.t. x + y = 2 -> 2 at (1, 1).
        let value = constrained_minimum(&circle(), &[1.0, 1.0], 2.0).unwrap();
        assert!((value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bracket_for_circle_matches_geometry() {
        let selector = LevelSetSelector::default();
        let (low, high) = selector.bracket(&circle(), &spec()).unwrap();
        // Max of x^2+y^2 over the X0 corners (|x|=|y|=0.5) is 0.5.
        assert!((low - 0.5).abs() < 1e-9);
        // Min over each unsafe hyperplane (|x|=3 or |y|=3) is 9.
        assert!((high - 9.0).abs() < 1e-9);
    }

    #[test]
    fn bracket_rejects_indefinite_or_too_tight_generators() {
        let selector = LevelSetSelector::default();
        let indefinite = GeneratorFunction::new(
            Matrix::from_diagonal(&Vector::from_slice(&[1.0, -1.0])),
            Vector::zeros(2),
            0.0,
        );
        assert!(selector.bracket(&indefinite, &spec()).is_none());

        // A generator whose minimizer sits inside the unsafe set cannot work.
        let shifted = GeneratorFunction::new(
            Matrix::identity(2),
            Vector::from_slice(&[-8.0, 0.0]), // minimizer at (4, 0), unsafe
            0.0,
        );
        assert!(selector.bracket(&shifted, &spec()).is_none());
    }

    #[test]
    fn selection_confirms_level_with_smt() {
        let system = system();
        let queries = QueryBuilder::new(&system, 1e-6);
        let solver = DeltaSolver::new(1e-3);
        let selector = LevelSetSelector::default();
        let result = selector.select(&circle(), system.spec(), &queries, &solver);
        match result {
            LevelSetResult::Found { level, iterations } => {
                assert!(level > 0.5 && level < 9.0, "level {level}");
                assert!(iterations >= 1);
            }
            LevelSetResult::NotFound { reason, .. } => panic!("selection failed: {reason}"),
        }
    }

    #[test]
    fn cancelled_budget_stops_the_level_search() {
        let system = system();
        let queries = QueryBuilder::new(&system, 1e-6);
        let budget = nncps_deltasat::Budget::unlimited();
        budget.cancel();
        let solver = DeltaSolver::new(1e-3).with_budget(budget);
        let selector = LevelSetSelector::default();
        let result = selector.select(&circle(), system.spec(), &queries, &solver);
        match result {
            LevelSetResult::NotFound { reason, iterations } => {
                assert!(reason.contains("cancelled"), "{reason}");
                assert_eq!(iterations, 0);
            }
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn fuel_exhaustion_mid_search_stops_the_level_search() {
        let system = system();
        let queries = QueryBuilder::new(&system, 1e-6);
        // A tiny fuel allowance: the first confirmation query exhausts it
        // and the search must stop instead of bisecting forever on Unknowns.
        let solver =
            DeltaSolver::new(1e-3).with_budget(nncps_deltasat::Budget::unlimited().with_fuel(10));
        let selector = LevelSetSelector::default();
        let result = selector.select(&circle(), system.spec(), &queries, &solver);
        match result {
            LevelSetResult::NotFound { reason, iterations } => {
                assert!(reason.contains("fuel budget"), "{reason}");
                assert!(iterations <= 1, "iterations {iterations}");
            }
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn selection_reports_failure_for_hopeless_generator() {
        let system = system();
        let queries = QueryBuilder::new(&system, 1e-6);
        let solver = DeltaSolver::new(1e-3);
        let selector = LevelSetSelector::new(5);
        let shifted =
            GeneratorFunction::new(Matrix::identity(2), Vector::from_slice(&[-8.0, 0.0]), 0.0);
        let result = selector.select(&shifted, system.spec(), &queries, &solver);
        assert!(matches!(result, LevelSetResult::NotFound { .. }));
        assert_eq!(result.level(), None);
    }
}
