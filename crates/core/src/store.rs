//! A content-addressed on-disk artifact store keyed by structural
//! [`Fingerprint`]s.
//!
//! The warm-start layers memoize pure functions of 128-bit structural
//! identity keys; this store extends those memos across *processes*: a
//! resident verification service (or a sequence of CLI runs pointed at the
//! same `--store` directory) re-reads yesterday's seed-trace bundles, LP
//! candidates, and whole verification outcomes instead of recomputing them.
//!
//! The layout is deliberately boring:
//!
//! ```text
//! <root>/
//!   <kind>/<fingerprint-hex>.bin   # one write-once entry per key
//!   tmp/                           # staging area for atomic publication
//!   quarantine/                    # entries that failed validation
//! ```
//!
//! * **Write-once:** an entry is a pure function of its key, so the first
//!   writer wins and later writers skip the disk entirely.  Entries are
//!   staged in `tmp/` and published with an atomic `rename`, so readers
//!   never observe a torn file — a process killed mid-write (including by
//!   SIGTERM) leaves at worst an orphaned temp file, never a corrupt entry.
//! * **Versioned header + checksum:** every entry carries a magic tag, a
//!   format version, the payload length, and an FNV-1a checksum.
//! * **Quarantine, not crash:** an entry that fails any validation step
//!   (truncated header, wrong magic, future version, checksum mismatch) is
//!   moved aside into `quarantine/` and reported as a miss.  Disk rot
//!   degrades a warm start into a cold one; it never takes the verifier
//!   down or — worse — feeds it torn data.
//!
//! Key discipline is the caller's job, exactly as for
//! [`WarmStart`](crate::WarmStart): the fingerprint must cover every input
//! of the payload it names, so a hit is bit-identical to recomputation.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use nncps_expr::Fingerprint;

/// Magic bytes opening every store entry.
const MAGIC: &[u8; 8] = b"NNCPSSTR";

/// On-disk format version.  Bumped on any incompatible layout change;
/// entries from other versions quarantine as corrupt rather than parse.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// magic + version + payload length + checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Counters of one [`DiskStore`]'s activity (reporting only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStoreStats {
    /// Lookups that found a valid entry.
    pub hits: usize,
    /// Lookups that found nothing (or only a quarantined entry).
    pub misses: usize,
    /// Entries written (first writer for their key).
    pub writes: usize,
    /// Writes skipped because the entry already existed.
    pub write_skips: usize,
    /// Entries moved to `quarantine/` after failing validation **by this
    /// process** (in-memory counter, resets with the store handle).
    pub quarantined: usize,
    /// Files currently present in `quarantine/`, including those left by
    /// earlier processes on the same root — the number a diagnosis pass
    /// would find on disk.
    pub quarantine_dir_entries: usize,
}

/// A write-once, content-addressed artifact store rooted at one directory
/// (see the [module docs](self)).
///
/// The store is `Sync`: concurrent readers and writers coordinate through
/// the filesystem (atomic renames), not through locks.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Distinguishes temp files of concurrent writers within one process.
    nonce: AtomicU64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    writes: AtomicUsize,
    write_skips: AtomicUsize,
    quarantined: AtomicUsize,
}

impl DiskStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory tree cannot be
    /// created.
    pub fn open(root: impl AsRef<Path>) -> std::io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("tmp"))?;
        fs::create_dir_all(root.join("quarantine"))?;
        Ok(DiskStore {
            root,
            nonce: AtomicU64::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            writes: AtomicUsize::new(0),
            write_skips: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of the activity counters.  `quarantine_dir_entries` is read
    /// from disk, so it also covers entries quarantined by previous
    /// processes on the same root.
    pub fn stats(&self) -> DiskStoreStats {
        let quarantine_dir_entries = fs::read_dir(self.root.join("quarantine"))
            .map(|entries| entries.filter_map(Result::ok).count())
            .unwrap_or(0);
        DiskStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_skips: self.write_skips.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            quarantine_dir_entries,
        }
    }

    fn entry_path(&self, kind: &str, key: Fingerprint) -> PathBuf {
        self.root
            .join(kind)
            .join(format!("{:016x}{:016x}.bin", key.0, key.1))
    }

    /// Loads the payload stored under `(kind, key)`, validating the header
    /// and checksum.  A missing entry is a plain miss; an invalid entry is
    /// quarantined and reported as a miss.
    pub fn load(&self, kind: &str, key: Fingerprint) -> Option<Vec<u8>> {
        let path = self.entry_path(kind, key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match validate(&bytes) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload.to_vec())
            }
            None => {
                self.quarantine(kind, &path, &bytes);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `payload` under `(kind, key)` unless an entry already exists
    /// (write-once).  Returns `true` when this call published the entry.
    ///
    /// Publication is atomic (staged in `tmp/`, then renamed into place),
    /// and failures are absorbed: a full or read-only disk degrades the
    /// store to a no-op rather than failing verification.
    pub fn store(&self, kind: &str, key: Fingerprint, payload: &[u8]) -> bool {
        let path = self.entry_path(kind, key);
        if path.exists() {
            self.write_skips.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        let staged = self.root.join("tmp").join(format!(
            "{kind}-{:016x}{:016x}-{}-{}",
            key.0,
            key.1,
            std::process::id(),
            self.nonce.fetch_add(1, Ordering::Relaxed),
        ));
        let published = fs::create_dir_all(self.root.join(kind)).is_ok()
            && fs::write(&staged, &bytes).is_ok()
            && fs::rename(&staged, &path).is_ok();
        if published {
            self.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&staged);
        }
        published
    }

    /// Moves an invalid entry aside so it is diagnosable but never re-read.
    ///
    /// The destination name is suffixed with the FNV-1a hash of the corrupt
    /// **contents**, not a pid/nonce pair: pids recycle and the nonce resets
    /// every process, so two *different* corruptions of the same key across
    /// restarts would otherwise land on the same name and silently overwrite
    /// the earlier evidence.  The content hash is deterministic — distinct
    /// corruptions get distinct files, and re-quarantining bit-identical
    /// contents dedupes onto the existing file instead of clobbering it.
    fn quarantine(&self, kind: &str, path: &Path, bytes: &[u8]) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let dest = self
            .root
            .join("quarantine")
            .join(format!("{kind}-{name}-{:016x}", fnv64(bytes)));
        if dest.exists() {
            // Same corrupt bits already preserved: drop the duplicate.
            let _ = fs::remove_file(path);
        } else if fs::rename(path, &dest).is_err() {
            // Last resort: make sure the bad entry cannot be read again.
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }
}

/// Checks the header and checksum, returning the payload slice when valid.
fn validate(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    if version != STORE_FORMAT_VERSION {
        return None;
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().ok()?) as usize;
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().ok()?);
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != payload_len || fnv64(payload) != checksum {
        return None;
    }
    Some(payload)
}

/// 64-bit FNV-1a (the workspace's standard non-cryptographic hash).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A little-endian binary payload writer for store entries.
///
/// The codec is intentionally minimal: fixed-width integers, bit-exact
/// `f64`s (via [`f64::to_bits`]), and length-prefixed strings/sequences.
/// Payload corruption below the header checksum is caught by the paired
/// [`PayloadReader`] returning `None`.
#[derive(Debug, Default)]
pub(crate) struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    pub(crate) fn new() -> Self {
        PayloadWriter::default()
    }

    pub(crate) fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    pub(crate) fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    pub(crate) fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    pub(crate) fn put_str(&mut self, value: &str) {
        self.put_usize(value.len());
        self.buf.extend_from_slice(value.as_bytes());
    }

    pub(crate) fn put_f64_slice(&mut self, values: &[f64]) {
        self.put_usize(values.len());
        for &x in values {
            self.put_f64(x);
        }
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// The paired reader; every accessor returns `None` past the end, so
/// malformed payloads decode to a miss instead of panicking.
#[derive(Debug)]
pub(crate) struct PayloadReader<'a> {
    bytes: &'a [u8],
}

impl<'a> PayloadReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes }
    }

    pub(crate) fn take_u8(&mut self) -> Option<u8> {
        let (&first, rest) = self.bytes.split_first()?;
        self.bytes = rest;
        Some(first)
    }

    pub(crate) fn take_u64(&mut self) -> Option<u64> {
        let (head, rest) = self.bytes.split_at_checked(8)?;
        self.bytes = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    pub(crate) fn take_usize(&mut self) -> Option<usize> {
        self.take_u64().map(|x| x as usize)
    }

    pub(crate) fn take_f64(&mut self) -> Option<f64> {
        self.take_u64().map(f64::from_bits)
    }

    pub(crate) fn take_str(&mut self) -> Option<String> {
        let len = self.take_usize()?;
        let (head, rest) = self.bytes.split_at_checked(len)?;
        self.bytes = rest;
        String::from_utf8(head.to_vec()).ok()
    }

    pub(crate) fn take_f64_vec(&mut self) -> Option<Vec<f64>> {
        let len = self.take_usize()?;
        // Bound by the remaining bytes so a corrupt length cannot trigger a
        // huge allocation.
        if len.checked_mul(8)? > self.bytes.len() {
            return None;
        }
        (0..len).map(|_| self.take_f64()).collect()
    }

    /// Bytes not yet consumed — decoders use this to bound sequence counts
    /// before allocating.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Whether every byte was consumed (decoders check this for strictness).
    pub(crate) fn is_exhausted(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_store(tag: &str) -> DiskStore {
        let root =
            std::env::temp_dir().join(format!("nncps-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        DiskStore::open(&root).expect("store opens")
    }

    #[test]
    fn round_trips_and_is_write_once() {
        let store = scratch_store("roundtrip");
        let key = Fingerprint(0xdead_beef, 0x1234_5678);
        assert_eq!(store.load("traces", key), None);
        assert!(store.store("traces", key, b"payload-one"));
        assert_eq!(
            store.load("traces", key).as_deref(),
            Some(&b"payload-one"[..])
        );
        // Second writer skips: first writer wins, contents stay put.
        assert!(!store.store("traces", key, b"payload-two"));
        assert_eq!(
            store.load("traces", key).as_deref(),
            Some(&b"payload-one"[..])
        );
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!((stats.writes, stats.write_skips), (1, 1));
        assert_eq!(stats.quarantined, 0);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn distinct_kinds_and_keys_do_not_collide() {
        let store = scratch_store("kinds");
        let key = Fingerprint(1, 2);
        assert!(store.store("a", key, b"alpha"));
        assert!(store.store("b", key, b"beta"));
        assert!(store.store("a", Fingerprint(1, 3), b"gamma"));
        assert_eq!(store.load("a", key).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(store.load("b", key).as_deref(), Some(&b"beta"[..]));
        assert_eq!(
            store.load("a", Fingerprint(1, 3)).as_deref(),
            Some(&b"gamma"[..])
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_entries_quarantine_instead_of_crashing() {
        let store = scratch_store("corrupt");
        let key = Fingerprint(7, 7);
        assert!(store.store("outcome", key, b"precious bits"));
        let path = store.entry_path("outcome", key);

        // Flip a payload byte: checksum mismatch.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load("outcome", key), None);
        assert!(!path.exists(), "corrupt entry must be moved aside");
        assert_eq!(store.stats().quarantined, 1);
        // The quarantined file is preserved for diagnosis.
        assert_eq!(
            fs::read_dir(store.root().join("quarantine"))
                .unwrap()
                .count(),
            1
        );

        // The key is writable again after quarantine.
        assert!(store.store("outcome", key, b"precious bits"));
        assert_eq!(
            store.load("outcome", key).as_deref(),
            Some(&b"precious bits"[..])
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn truncated_and_wrong_version_entries_are_rejected() {
        let store = scratch_store("versions");
        let key = Fingerprint(9, 9);

        // Truncated below the header.
        assert!(store.store("x", key, b"data"));
        let path = store.entry_path("x", key);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..HEADER_LEN - 3]).unwrap();
        assert_eq!(store.load("x", key), None);

        // Wrong magic.
        assert!(store.store("x", key, b"data"));
        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        fs::write(&path, &bad_magic).unwrap();
        assert_eq!(store.load("x", key), None);

        // Future format version.
        assert!(store.store("x", key, b"data"));
        let mut future = full.clone();
        future[8..12].copy_from_slice(&(STORE_FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &future).unwrap();
        assert_eq!(store.load("x", key), None);

        // Payload shorter than the declared length.
        assert!(store.store("x", key, b"data"));
        fs::write(&path, &full[..full.len() - 2]).unwrap();
        assert_eq!(store.load("x", key), None);

        assert_eq!(store.stats().quarantined, 4);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn quarantine_names_are_deterministic_across_restarts() {
        // Two corrupt entries for the same key, hitting *different* store
        // handles (fresh nonce, as after a restart), must both survive in
        // `quarantine/`: the content-hash suffix keeps distinct corruptions
        // on distinct names, while a bit-identical corruption dedupes onto
        // the existing file instead of overwriting it.
        let store = scratch_store("restart-quarantine");
        let key = Fingerprint(0xaa, 0xbb);
        assert!(store.store("outcome", key, b"evidence"));
        let path = store.entry_path("outcome", key);
        let good = fs::read(&path).unwrap();

        let mut corrupt_a = good.clone();
        *corrupt_a.last_mut().unwrap() ^= 0x01;
        fs::write(&path, &corrupt_a).unwrap();
        assert_eq!(store.load("outcome", key), None);

        // "Restart": a fresh handle on the same root resets pid/nonce-style
        // state; a *different* corruption of the same key must not clobber
        // the first quarantined file.
        let reopened = DiskStore::open(store.root()).expect("store reopens");
        assert!(reopened.store("outcome", key, b"evidence"));
        let mut corrupt_b = good.clone();
        *corrupt_b.last_mut().unwrap() ^= 0x02;
        fs::write(&path, &corrupt_b).unwrap();
        assert_eq!(reopened.load("outcome", key), None);
        let quarantine_files = || {
            fs::read_dir(store.root().join("quarantine"))
                .unwrap()
                .count()
        };
        assert_eq!(quarantine_files(), 2, "distinct corruptions both kept");

        // The identical corruption again: dedupes, never overwrites.
        assert!(reopened.store("outcome", key, b"evidence"));
        fs::write(&path, &corrupt_b).unwrap();
        assert_eq!(reopened.load("outcome", key), None);
        assert_eq!(quarantine_files(), 2, "identical corruption dedupes");

        // Per-process counter vs on-disk count: the reopened handle saw two
        // quarantines, the directory holds two files from three events.
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(reopened.stats().quarantined, 2);
        assert_eq!(reopened.stats().quarantine_dir_entries, 2);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn payload_codec_round_trips_and_rejects_truncation() {
        let mut writer = PayloadWriter::new();
        writer.put_u8(3);
        writer.put_u64(0xffee_ddcc_bbaa_0099);
        writer.put_usize(41);
        writer.put_f64(-0.0);
        writer.put_str("reason: π ≈ 3");
        writer.put_f64_slice(&[1.5, f64::INFINITY, f64::MIN_POSITIVE]);
        let bytes = writer.finish();

        let mut reader = PayloadReader::new(&bytes);
        assert_eq!(reader.take_u8(), Some(3));
        assert_eq!(reader.take_u64(), Some(0xffee_ddcc_bbaa_0099));
        assert_eq!(reader.take_usize(), Some(41));
        assert_eq!(
            reader.take_f64().map(f64::to_bits),
            Some((-0.0f64).to_bits())
        );
        assert_eq!(reader.take_str().as_deref(), Some("reason: π ≈ 3"));
        assert_eq!(
            reader.take_f64_vec(),
            Some(vec![1.5, f64::INFINITY, f64::MIN_POSITIVE])
        );
        assert!(reader.is_exhausted());

        // Truncation surfaces as `None`, never a panic.
        let mut truncated = PayloadReader::new(&bytes[..bytes.len() - 4]);
        truncated.take_u8();
        truncated.take_u64();
        truncated.take_usize();
        truncated.take_f64();
        truncated.take_str();
        assert_eq!(truncated.take_f64_vec(), None);

        // A corrupt sequence length cannot force a huge allocation.
        let mut writer = PayloadWriter::new();
        writer.put_usize(usize::MAX / 2);
        let bytes = writer.finish();
        assert_eq!(PayloadReader::new(&bytes).take_f64_vec(), None);
    }
}
