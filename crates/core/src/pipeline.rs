//! The end-to-end verification procedure of Figure 1.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use nncps_deltasat::{Budget, DeltaSolver, ExhaustionReason, SatResult, SolverStats};
use nncps_expr::{Fingerprint, StructuralHasher};
use nncps_sim::{Integrator, Simulator, Trace};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::synthesis::SynthesisOptions;
use crate::{
    BarrierCertificate, CandidateSynthesizer, ClosedLoopSystem, LevelSetResult, LevelSetSelector,
    QueryBuilder, WarmStart,
};

/// Configuration of the verification pipeline.
///
/// # Examples
///
/// ```
/// use nncps_barrier::VerificationConfig;
///
/// // A scaled-down single-threaded run for quick experiments.
/// let config = VerificationConfig {
///     num_seed_traces: 8,
///     sim_duration: 5.0,
///     threads: 1,
///     ..VerificationConfig::default()
/// };
/// assert_eq!(config.gamma, 1e-6); // the paper's slack is the default
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationConfig {
    /// Number of random initial states simulated to seed the LP (Φs).
    pub num_seed_traces: usize,
    /// Simulation step size.
    pub sim_dt: f64,
    /// Simulation horizon per trace.
    pub sim_duration: f64,
    /// The slack `γ` of the decrease condition (the paper uses `10⁻⁶`).
    pub gamma: f64,
    /// Precision `δ` of the δ-SAT solver.
    pub delta: f64,
    /// Box budget per δ-SAT query.
    pub max_smt_boxes: usize,
    /// Maximum number of candidate-generator iterations (LP + SMT loop).
    pub max_candidate_iterations: usize,
    /// Maximum number of level-set bisection iterations.
    pub max_level_iterations: usize,
    /// Maximum number of samples kept per trace when generating LP
    /// constraints (traces are downsampled to keep the dense simplex tableau
    /// small).
    pub max_samples_per_trace: usize,
    /// Seed for the deterministic RNG that samples initial states.
    pub seed: u64,
    /// LP constraint-generation options.
    pub synthesis: SynthesisOptions,
    /// Worker threads for seed-trace simulation (`0` = one per available
    /// core, `1` = fully sequential).
    ///
    /// The seed traces are batched through
    /// [`Simulator::simulate_until_batch`](nncps_sim::Simulator::simulate_until_batch);
    /// the batch is bit-identical to the sequential loop for every thread
    /// count, so the default (`0`) never affects results.  Ignored
    /// (sequential) when the `parallel` feature is disabled.
    pub threads: usize,
    /// Worker threads for the δ-SAT searches, passed to
    /// [`DeltaSolver::with_threads`](nncps_deltasat::DeltaSolver::with_threads)
    /// (`1` = sequential, `0` = one per available core).
    ///
    /// Kept separate from [`VerificationConfig::threads`] and defaulting to
    /// `1` because the parallel search's δ-SAT *witnesses* are only
    /// deterministic per thread count: with `0` the counterexamples fed back
    /// into the LP — and hence the final certificate — could differ between
    /// machines with different core counts.  Set to `0` (or an explicit
    /// count) to trade that cross-machine reproducibility for speed.
    pub smt_threads: usize,
    /// Batched sibling evaluation in the δ-SAT searches, passed to
    /// [`DeltaSolver::with_batched_evaluation`](nncps_deltasat::DeltaSolver::with_batched_evaluation).
    ///
    /// Bit-invisible (identical verdicts, witnesses, and statistics either
    /// way — and therefore identical certificates and report fingerprints);
    /// on by default, off only for differential testing of the batched
    /// evaluation layer.
    pub smt_batched_evaluation: bool,
}

impl VerificationConfig {
    /// A typed builder that validates the configuration at construction —
    /// nonsense values (δ ≤ 0, zero seed traces, empty iteration budgets)
    /// are rejected here instead of surfacing as panics or silent
    /// non-termination deep inside the solver.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_barrier::VerificationConfig;
    ///
    /// let config = VerificationConfig::builder()
    ///     .num_seed_traces(8)
    ///     .sim_duration(5.0)
    ///     .threads(1)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.gamma, 1e-6); // the paper's slack is the default
    /// assert!(VerificationConfig::builder().delta(0.0).build().is_err());
    /// ```
    pub fn builder() -> VerificationConfigBuilder {
        VerificationConfigBuilder {
            config: VerificationConfig::default(),
        }
    }

    /// Validates an already-assembled configuration (the builder's
    /// [`build`](VerificationConfigBuilder::build) calls this; entry points
    /// that accept externally-supplied configurations call it directly).
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn positive_finite(name: &'static str, value: f64) -> Result<(), ConfigError> {
            if value > 0.0 && value.is_finite() {
                Ok(())
            } else {
                Err(ConfigError {
                    message: format!("{name} must be positive and finite, got {value}"),
                })
            }
        }
        fn nonzero(name: &'static str, value: usize) -> Result<(), ConfigError> {
            if value == 0 {
                Err(ConfigError {
                    message: format!("{name} must be at least 1"),
                })
            } else {
                Ok(())
            }
        }
        positive_finite("sim_dt", self.sim_dt)?;
        positive_finite("sim_duration", self.sim_duration)?;
        positive_finite("delta (δ-SAT precision)", self.delta)?;
        if !(self.gamma >= 0.0 && self.gamma.is_finite()) {
            return Err(ConfigError {
                message: format!(
                    "gamma (decrease slack) must be non-negative and finite, got {}",
                    self.gamma
                ),
            });
        }
        nonzero("num_seed_traces", self.num_seed_traces)?;
        nonzero("max_smt_boxes", self.max_smt_boxes)?;
        nonzero("max_candidate_iterations", self.max_candidate_iterations)?;
        nonzero("max_level_iterations", self.max_level_iterations)?;
        if self.max_samples_per_trace < 2 {
            return Err(ConfigError {
                message: format!(
                    "max_samples_per_trace must be at least 2 (a decrease \
                     constraint needs consecutive samples), got {}",
                    self.max_samples_per_trace
                ),
            });
        }
        Ok(())
    }
}

/// An invalid [`VerificationConfig`] caught at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid verification config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`VerificationConfig`] — see
/// [`VerificationConfig::builder`].
#[derive(Debug, Clone)]
pub struct VerificationConfigBuilder {
    config: VerificationConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, value: $ty) -> Self {
                self.config.$field = value;
                self
            }
        )*
    };
}

impl VerificationConfigBuilder {
    builder_setters! {
        /// Number of random initial states simulated to seed the LP.
        num_seed_traces: usize,
        /// Simulation step size.
        sim_dt: f64,
        /// Simulation horizon per trace.
        sim_duration: f64,
        /// The slack `γ` of the decrease condition.
        gamma: f64,
        /// Precision `δ` of the δ-SAT solver.
        delta: f64,
        /// Box budget per δ-SAT query.
        max_smt_boxes: usize,
        /// Maximum number of candidate-generator iterations.
        max_candidate_iterations: usize,
        /// Maximum number of level-set bisection iterations.
        max_level_iterations: usize,
        /// Maximum number of samples kept per trace.
        max_samples_per_trace: usize,
        /// Seed for the deterministic initial-state RNG.
        seed: u64,
        /// LP constraint-generation options.
        synthesis: SynthesisOptions,
        /// Worker threads for seed-trace simulation (bit-invisible).
        threads: usize,
        /// Worker threads for the δ-SAT searches (bit-*visible*; see the
        /// field docs on [`VerificationConfig::smt_threads`]).
        smt_threads: usize,
        /// Batched sibling evaluation in the δ-SAT searches
        /// (bit-invisible).
        smt_batched_evaluation: bool,
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field when any value
    /// is out of range.
    pub fn build(self) -> Result<VerificationConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for VerificationConfig {
    fn default() -> Self {
        VerificationConfig {
            num_seed_traces: 20,
            sim_dt: 0.05,
            sim_duration: 10.0,
            gamma: 1e-6,
            delta: 1e-4,
            max_smt_boxes: 2_000_000,
            max_candidate_iterations: 10,
            max_level_iterations: 30,
            max_samples_per_trace: 25,
            seed: 2018,
            synthesis: SynthesisOptions::default(),
            threads: 0,
            smt_threads: 1,
            smt_batched_evaluation: true,
        }
    }
}

/// Wall-clock time spent in each stage of the procedure, mirroring the
/// columns of Table 1 in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Time spent simulating traces (seed traces and counterexample traces).
    pub simulation: Duration,
    /// Total time spent solving LPs.
    pub lp: Duration,
    /// Total time spent in the decrease-condition SMT checks (query (5)).
    pub smt_decrease: Duration,
    /// Time spent selecting and confirming the level set (queries (6), (7)).
    pub level_set: Duration,
    /// Total wall-clock time of the verification run.
    pub total: Duration,
}

impl StageTimings {
    /// Time not accounted for by the other columns ("Time Spent in Other
    /// Steps" in Table 1).
    pub fn other(&self) -> Duration {
        self.total
            .saturating_sub(self.lp)
            .saturating_sub(self.smt_decrease)
            .saturating_sub(self.level_set)
    }
}

/// Statistics of a verification run (the quantities reported in Table 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerificationStats {
    /// Number of generator-candidate iterations (each is one LP solve plus one
    /// decrease check).
    pub generator_iterations: usize,
    /// Number of LP solves.
    pub lp_solves: usize,
    /// Number of decrease-condition SMT checks.
    pub smt_decrease_checks: usize,
    /// Number of counterexamples returned by the decrease check.
    pub counterexamples: usize,
    /// Number of level-set bisection iterations.
    pub level_iterations: usize,
    /// Aggregated δ-SAT search statistics over every query the run issued
    /// (the decrease checks (5) and the level-set confirmations (6)/(7)).
    pub solver: SolverStats,
    /// Midpoints of the δ-SAT witness boxes returned by failed decrease
    /// checks, in the order they were fed back into the LP.  Deterministic
    /// for a fixed seed and solver thread count, so batch reports can
    /// fingerprint the counterexample trail.
    pub counterexample_witnesses: Vec<Vec<f64>>,
    /// The candidate generator that failed at each witness (parallel to
    /// [`VerificationStats::counterexample_witnesses`]), flattened as the
    /// rows of `P` followed by `q` and `c`.  Recorded so the
    /// simulation-oracle tests can replay every witness against the exact
    /// decrease condition the solver refuted.
    pub counterexample_candidates: Vec<Vec<f64>>,
    /// Stage timings.
    pub timings: StageTimings,
    /// Why a governed run stopped early, if its [`Budget`] tripped
    /// (fuel, deadline, or cancellation) or a δ-SAT query exhausted its box
    /// budget.  `None` for ungoverned runs and for inconclusive outcomes
    /// with a non-resource cause (infeasible LP, no admissible level).
    pub exhaustion: Option<ExhaustionReason>,
}

impl VerificationStats {
    /// Average time of a single LP solve.
    pub fn avg_lp_time(&self) -> Duration {
        average(self.timings.lp, self.lp_solves)
    }

    /// Average time of a single decrease-condition SMT check.
    pub fn avg_smt_time(&self) -> Duration {
        average(self.timings.smt_decrease, self.smt_decrease_checks)
    }
}

fn average(total: Duration, count: usize) -> Duration {
    if count == 0 {
        Duration::ZERO
    } else {
        total / count as u32
    }
}

/// Outcome of a verification run.
#[derive(Debug, Clone)]
pub enum VerificationOutcome {
    /// A barrier certificate was found; the system is proven safe.
    Certified {
        /// The certificate `B(x) = W(x) − ℓ`.
        certificate: BarrierCertificate,
        /// Run statistics (Table 1 quantities).
        stats: VerificationStats,
    },
    /// The procedure terminated without a conclusion (the paper's termination
    /// cases (1)–(3): infeasible LP, iteration budget exhausted, or no level
    /// set found).  This does **not** mean the system is unsafe.
    Inconclusive {
        /// Human-readable explanation of why the procedure stopped.
        reason: String,
        /// Run statistics.
        stats: VerificationStats,
    },
}

impl VerificationOutcome {
    /// Returns `true` if a certificate was produced.
    pub fn is_certified(&self) -> bool {
        matches!(self, VerificationOutcome::Certified { .. })
    }

    /// The certificate, if the run succeeded.
    pub fn certificate(&self) -> Option<&BarrierCertificate> {
        match self {
            VerificationOutcome::Certified { certificate, .. } => Some(certificate),
            VerificationOutcome::Inconclusive { .. } => None,
        }
    }

    /// The run statistics.
    pub fn stats(&self) -> &VerificationStats {
        match self {
            VerificationOutcome::Certified { stats, .. }
            | VerificationOutcome::Inconclusive { stats, .. } => stats,
        }
    }
}

impl fmt::Display for VerificationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationOutcome::Certified { certificate, stats } => write!(
                f,
                "certified: {certificate} ({} iterations, {:.2?} total)",
                stats.generator_iterations, stats.timings.total
            ),
            VerificationOutcome::Inconclusive { reason, stats } => write!(
                f,
                "inconclusive after {} iterations: {reason}",
                stats.generator_iterations
            ),
        }
    }
}

/// The simulation-guided barrier-certificate verifier (Figure 1 of the paper).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Verifier {
    config: VerificationConfig,
}

impl Verifier {
    /// Creates a verifier with the given configuration.
    pub fn new(config: VerificationConfig) -> Self {
        Verifier { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &VerificationConfig {
        &self.config
    }

    /// The pipeline engine: the full procedure of Figure 1 over an optional
    /// [`WarmStart`] and under a resource [`Budget`].
    ///
    /// This is deliberately *not* public — the one public entry point is
    /// [`VerificationSession::verify`](crate::VerificationSession::verify),
    /// which wraps this engine with the outcome memo, the disk store, and
    /// the memo-safety rules.  The behavioural contracts the session relies
    /// on:
    ///
    /// * **Warm ≡ cold, bit for bit.**  With a warm-start handle, compiled
    ///   δ-SAT queries, seed-trace bundles, and LP candidates are looked up
    ///   under structural identity keys before being recomputed; every
    ///   reused artifact is bit-identical to recomputation (see the
    ///   [`warmstart`](crate::warmstart) module docs), so verdicts,
    ///   certificate bits, witnesses, and solver statistics are identical
    ///   to `warm == None`.  Only wall-clock timings differ.
    /// * **Cooperative governance.**  Every stage polls the budget at its
    ///   loop head — the seed-trace batch, the candidate LP/SMT loop, the
    ///   δ-SAT searches themselves, and the level-set bisection — and a
    ///   tripped budget degrades the run to
    ///   [`VerificationOutcome::Inconclusive`] with the machine-readable
    ///   reason in [`VerificationStats::exhaustion`].  A fuel limit is
    ///   deterministic (fuel counts tape instructions, and the solver
    ///   forces its sequential search path under fuel); deadlines and
    ///   cancellation are inherently non-deterministic and are excluded
    ///   from pinned report forms.  An untripped budget never changes the
    ///   outcome.
    /// * **Memoized bundles are built ungoverned** — a tripped budget can
    ///   never publish a truncated trace bundle that a sibling member would
    ///   then silently reuse; governance is enforced by polling between
    ///   stages on the warm path.
    pub(crate) fn run(
        &self,
        system: &ClosedLoopSystem,
        warm: Option<&WarmStart>,
        budget: &Budget,
    ) -> VerificationOutcome {
        let start = Instant::now();
        let mut stats = VerificationStats::default();
        let cfg = &self.config;

        let spec = system.spec().clone();
        let dynamics = system.dynamics();
        let simulator = Simulator::new(Integrator::RungeKutta4, cfg.sim_dt, cfg.sim_duration);
        let solver = DeltaSolver::new(cfg.delta)
            .with_max_boxes(cfg.max_smt_boxes)
            .with_threads(cfg.smt_threads)
            .with_batched_evaluation(cfg.smt_batched_evaluation)
            .with_budget(budget.clone());
        let queries = QueryBuilder::new(system, cfg.gamma);
        let mut synthesizer = CandidateSynthesizer::with_options(spec.clone(), cfg.synthesis);

        // Identity of everything the simulation bundles depend on: the
        // dynamics DAG plus the integrator settings.  Computed once per run,
        // only when a warm-start handle can use it.
        let domain = spec.domain().clone();
        let sim_key_base = warm.map(|_| {
            let mut hasher = StructuralHasher::new();
            hasher.write_u8(0x20);
            for component in system.vector_field() {
                hasher.write_expr(component);
            }
            hasher.write_usize(domain.dim());
            for interval in domain.iter() {
                hasher.write_f64(interval.lo());
                hasher.write_f64(interval.hi());
            }
            hasher.write_f64(cfg.sim_dt);
            hasher.write_f64(cfg.sim_duration);
            hasher.write_usize(cfg.max_samples_per_trace);
            hasher
        });

        // --- Seed traces Φs -------------------------------------------------
        // The initial states are drawn sequentially from the seeded RNG (so
        // runs stay reproducible), then the embarrassingly parallel batch of
        // closed-loop simulations fans out over the worker threads.  The
        // downsampled bundle is a pure function of the warm-start key, so a
        // sweep computes it once per distinct (dynamics, domain, seed,
        // integrator) combination.
        let sim_start = Instant::now();
        let initial_states: Vec<Vec<f64>> = {
            let mut rng = seeded_rng(cfg.seed);
            (0..cfg.num_seed_traces)
                .map(|_| {
                    let unit: Vec<f64> = (0..domain.dim()).map(|_| rng.gen::<f64>()).collect();
                    domain.lerp_point(&unit)
                })
                .collect()
        };
        let simulate_seed_traces = || {
            simulator
                .simulate_until_batch(
                    &dynamics,
                    &initial_states,
                    |_, s| !domain.contains_point(s),
                    cfg.threads,
                )
                .iter()
                .map(|trace| trace.downsampled(cfg.max_samples_per_trace))
                .collect()
        };
        let seed_traces: Arc<Vec<Trace>> = match (warm, &sim_key_base) {
            (Some(warm), Some(base)) => {
                // Memoized bundles are built ungoverned (see the method
                // docs); the budget is polled right after the stage instead.
                let key = seed_trace_key(base, cfg.seed, cfg.num_seed_traces);
                warm.traces_or_insert(key, simulate_seed_traces)
            }
            _ => {
                // Cold path: the governed batch stops every in-flight trace
                // at its next step head once the budget trips.  Untripped,
                // it is bit-identical to the ungoverned batch.
                match simulator.simulate_until_batch_governed(
                    &dynamics,
                    &initial_states,
                    |_, s| !domain.contains_point(s),
                    cfg.threads,
                    budget,
                ) {
                    Ok(traces) => Arc::new(
                        traces
                            .iter()
                            .map(|trace| trace.downsampled(cfg.max_samples_per_trace))
                            .collect(),
                    ),
                    Err(reason) => {
                        stats.timings.simulation += sim_start.elapsed();
                        stats.timings.total = start.elapsed();
                        stats.exhaustion = Some(reason);
                        return VerificationOutcome::Inconclusive {
                            reason: format!("verification stopped: {reason}"),
                            stats,
                        };
                    }
                }
            }
        };
        for trace in seed_traces.iter() {
            synthesizer.add_trace(trace);
        }
        stats.timings.simulation += sim_start.elapsed();
        if let Some(reason) = budget.check() {
            stats.timings.total = start.elapsed();
            stats.exhaustion = Some(reason);
            return VerificationOutcome::Inconclusive {
                reason: format!("verification stopped: {reason}"),
                stats,
            };
        }

        // --- Candidate loop: LP + decrease check (5) ------------------------
        let mut certified_generator = None;
        for iteration in 1..=cfg.max_candidate_iterations {
            // Cooperative governance poll at the candidate loop head;
            // `generator_iterations` still counts only iterations that
            // actually started.
            if let Some(reason) = budget.check() {
                stats.timings.total = start.elapsed();
                stats.exhaustion = Some(reason);
                return VerificationOutcome::Inconclusive {
                    reason: format!("verification stopped: {reason}"),
                    stats,
                };
            }
            stats.generator_iterations = iteration;

            // The synthesizer state (options, spec, accumulated rows) fully
            // determines the LP solution, so a sweep solves each distinct
            // state once.
            let lp_start = Instant::now();
            let candidate = match warm {
                Some(warm) => {
                    let memo = warm.candidate_or_insert(synthesizer.fingerprint(), || {
                        synthesizer.synthesize()
                    });
                    (*memo).clone()
                }
                None => synthesizer.synthesize(),
            };
            stats.timings.lp += lp_start.elapsed();
            stats.lp_solves += 1;
            let candidate = match candidate {
                Ok(candidate) => candidate,
                Err(err) => {
                    stats.timings.total = start.elapsed();
                    return VerificationOutcome::Inconclusive {
                        reason: format!("candidate synthesis failed: {err}"),
                        stats,
                    };
                }
            };

            // Compile the query to evaluation tapes *before* the timed SMT
            // section: the solver's branch-and-prune loop then runs on the
            // pre-lowered clauses without per-solve setup.  Under warm
            // start, structurally identical decrease queries (same candidate
            // bits over the same closed loop) reuse one compilation.
            let (compiled_query, query_domain) = match warm {
                Some(warm) => {
                    let (formula, domain) = queries.decrease_query(&candidate);
                    (warm.compilation().compile(&formula), domain)
                }
                None => {
                    let (compiled, domain) = queries.compiled_decrease_query(&candidate);
                    (Arc::new(compiled), domain)
                }
            };
            let smt_start = Instant::now();
            let (result, solve_stats) =
                solver.solve_compiled_with_stats(&compiled_query, &query_domain);
            stats.timings.smt_decrease += smt_start.elapsed();
            stats.smt_decrease_checks += 1;
            stats.solver.merge(&solve_stats);

            match result {
                SatResult::Unsat => {
                    certified_generator = Some(candidate);
                    break;
                }
                SatResult::DeltaSat(witness_box) => {
                    stats.counterexamples += 1;
                    let witness = witness_box.midpoint();
                    stats.counterexample_witnesses.push(witness.clone());
                    stats
                        .counterexample_candidates
                        .push(flatten_generator(&candidate));
                    // Cut the failing candidate out of the LP feasible set by
                    // requiring the Lie derivative to decrease at the witness
                    // (the row is linear in the template coefficients).
                    let derivative = system.derivative(&witness);
                    synthesizer.add_counterexample(&witness, &derivative, cfg.gamma.max(1e-9));
                    // Simulate from the counterexample (Φf) and refine the LP
                    // with the downstream behaviour as well.
                    let sim_start = Instant::now();
                    let simulate_witness_trace = || {
                        vec![simulator
                            .simulate_until(&dynamics, &witness, |_, s| !domain.contains_point(s))
                            .downsampled(cfg.max_samples_per_trace)]
                    };
                    let witness_traces = match (warm, &sim_key_base) {
                        (Some(warm), Some(base)) => {
                            let key = witness_trace_key(base, &witness);
                            warm.traces_or_insert(key, simulate_witness_trace)
                        }
                        _ => Arc::new(simulate_witness_trace()),
                    };
                    stats.timings.simulation += sim_start.elapsed();
                    synthesizer.add_trace(&witness_traces[0]);
                }
                SatResult::Unknown(reason) => {
                    stats.timings.total = start.elapsed();
                    stats.exhaustion = Some(reason);
                    return VerificationOutcome::Inconclusive {
                        reason: format!("decrease check inconclusive: {reason}"),
                        stats,
                    };
                }
            }
        }

        let Some(generator) = certified_generator else {
            stats.timings.total = start.elapsed();
            return VerificationOutcome::Inconclusive {
                reason: format!(
                    "no generator function passed the decrease check within {} iterations",
                    cfg.max_candidate_iterations
                ),
                stats,
            };
        };

        // --- Level-set selection: queries (6) and (7) ------------------------
        let level_start = Instant::now();
        let selector = LevelSetSelector::new(cfg.max_level_iterations);
        let (level_result, level_stats) = selector.select_with_cache(
            &generator,
            &spec,
            &queries,
            &solver,
            warm.map(WarmStart::compilation),
        );
        stats.solver.merge(&level_stats);
        stats.timings.level_set = level_start.elapsed();

        stats.timings.total = start.elapsed();
        match level_result {
            LevelSetResult::Found { level, iterations } => {
                stats.level_iterations = iterations;
                VerificationOutcome::Certified {
                    certificate: BarrierCertificate::new(generator, level),
                    stats,
                }
            }
            LevelSetResult::NotFound { reason, iterations } => {
                stats.level_iterations = iterations;
                // A budget that tripped during the level search surfaces as
                // a NotFound; record the machine-readable reason alongside
                // the prose (an untripped budget leaves this `None`).
                stats.exhaustion = budget.check();
                VerificationOutcome::Inconclusive {
                    reason: format!("level-set selection failed: {reason}"),
                    stats,
                }
            }
        }
    }
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new(VerificationConfig::default())
    }
}

/// Deterministic RNG used for initial-state sampling.
fn seeded_rng(seed: u64) -> ChaCha8Rng {
    use rand::SeedableRng;
    ChaCha8Rng::seed_from_u64(seed)
}

/// Key of the seed-trace bundle: the shared simulation identity plus the RNG
/// seed and trace count.
fn seed_trace_key(base: &StructuralHasher, seed: u64, num_traces: usize) -> Fingerprint {
    let mut hasher = base.clone();
    hasher.write_u8(0x21);
    hasher.write_u64(seed);
    hasher.write_usize(num_traces);
    hasher.finish()
}

/// Key of a counterexample trace: the shared simulation identity plus the
/// exact witness bits.
fn witness_trace_key(base: &StructuralHasher, witness: &[f64]) -> Fingerprint {
    let mut hasher = base.clone();
    hasher.write_u8(0x22);
    hasher.write_usize(witness.len());
    for &x in witness {
        hasher.write_f64(x);
    }
    hasher.finish()
}

/// Flattens a generator function the same way batch reports do: rows of `P`,
/// then `q`, then `c`.
fn flatten_generator(generator: &crate::GeneratorFunction) -> Vec<f64> {
    let n = generator.dim();
    let mut coefficients = Vec::with_capacity(n * n + n + 1);
    for i in 0..n {
        for j in 0..n {
            coefficients.push(generator.quadratic_part()[(i, j)]);
        }
    }
    for i in 0..n {
        coefficients.push(generator.linear_part()[i]);
    }
    coefficients.push(generator.constant_part());
    coefficients
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SafetySpec, VerificationRequest, VerificationSession};
    use nncps_expr::Expr;
    use nncps_interval::IntervalBox;

    /// One independent run through the public session API (a fresh session
    /// per call, so repeated calls really re-run the pipeline).
    fn verify_with(
        system: &ClosedLoopSystem,
        config: VerificationConfig,
        budget: Budget,
    ) -> VerificationOutcome {
        VerificationSession::new().verify(
            &VerificationRequest::over(system)
                .with_config(config)
                .with_budget(budget),
        )
    }

    fn verify_plain(system: &ClosedLoopSystem) -> VerificationOutcome {
        verify_with(system, VerificationConfig::default(), Budget::unlimited())
    }

    fn paper_style_spec() -> SafetySpec {
        SafetySpec::rectangular(
            IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
            IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
        )
    }

    fn stable_linear_system() -> ClosedLoopSystem {
        ClosedLoopSystem::new(
            vec![
                -Expr::var(0) + Expr::var(1) * 0.2,
                -Expr::var(1) - Expr::var(0) * 0.2,
            ],
            paper_style_spec(),
        )
    }

    fn unstable_system() -> ClosedLoopSystem {
        ClosedLoopSystem::new(vec![Expr::var(0), Expr::var(1)], paper_style_spec())
    }

    #[test]
    fn stable_system_is_certified() {
        let outcome = verify_plain(&stable_linear_system());
        assert!(outcome.is_certified(), "outcome: {outcome}");
        let certificate = outcome.certificate().unwrap();
        // The certified invariant contains X0 and avoids U.
        let spec = paper_style_spec();
        for corner in spec.initial_set().corners() {
            assert!(certificate.contains(&corner));
        }
        assert!(!certificate.contains(&[3.0, 3.0]));
        assert_eq!(
            certificate.count_violations(
                &spec,
                |p| vec![-p[0] + 0.2 * p[1], -p[1] - 0.2 * p[0]],
                25
            ),
            0
        );
        let stats = outcome.stats();
        assert!(stats.generator_iterations >= 1);
        assert!(stats.lp_solves >= 1);
        assert!(stats.smt_decrease_checks >= 1);
        assert!(stats.timings.total >= stats.timings.lp);
        assert!(stats.avg_lp_time() <= stats.timings.lp);
        assert!(format!("{outcome}").contains("certified"));
    }

    #[test]
    fn unstable_system_is_not_certified() {
        let config = VerificationConfig {
            max_candidate_iterations: 3,
            num_seed_traces: 8,
            sim_duration: 3.0,
            ..VerificationConfig::default()
        };
        let outcome = verify_with(&unstable_system(), config, Budget::unlimited());
        assert!(!outcome.is_certified());
        assert!(outcome.certificate().is_none());
        match outcome {
            VerificationOutcome::Inconclusive { reason, .. } => {
                assert!(!reason.is_empty());
            }
            VerificationOutcome::Certified { .. } => panic!("must not certify"),
        }
    }

    #[test]
    fn counterexample_refinement_recovers_from_sparse_seeding() {
        // With a single seed trace the first candidate is often wrong; the
        // CEX loop must still converge for the stable system.
        let config = VerificationConfig {
            num_seed_traces: 1,
            max_candidate_iterations: 12,
            ..VerificationConfig::default()
        };
        let outcome = verify_with(&stable_linear_system(), config, Budget::unlimited());
        assert!(outcome.is_certified(), "outcome: {outcome}");
    }

    #[test]
    fn parallel_smt_threads_still_certify() {
        let config = VerificationConfig {
            smt_threads: 2,
            ..VerificationConfig::default()
        };
        let outcome = verify_with(&stable_linear_system(), config, Budget::unlimited());
        assert!(outcome.is_certified(), "outcome: {outcome}");
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let a = verify_plain(&stable_linear_system());
        let b = verify_plain(&stable_linear_system());
        assert_eq!(a.is_certified(), b.is_certified());
        let (Some(ca), Some(cb)) = (a.certificate(), b.certificate()) else {
            panic!("both runs should certify");
        };
        assert_eq!(ca.generator(), cb.generator());
        assert_eq!(ca.level(), cb.level());
    }

    #[test]
    fn cancelled_budget_yields_inconclusive_immediately() {
        let budget = Budget::unlimited();
        budget.cancel();
        let outcome = verify_with(
            &stable_linear_system(),
            VerificationConfig::default(),
            budget,
        );
        match &outcome {
            VerificationOutcome::Inconclusive { reason, stats } => {
                assert!(reason.contains("cancelled"), "{reason}");
                assert_eq!(stats.exhaustion, Some(ExhaustionReason::Cancelled));
                assert_eq!(stats.generator_iterations, 0);
            }
            VerificationOutcome::Certified { .. } => panic!("cancelled run must not certify"),
        }
    }

    #[test]
    fn fuel_limited_run_degrades_to_inconclusive_with_the_reason() {
        let budget = Budget::unlimited().with_fuel(50);
        let outcome = verify_with(
            &stable_linear_system(),
            VerificationConfig::default(),
            budget,
        );
        match &outcome {
            VerificationOutcome::Inconclusive { reason, stats } => {
                assert!(
                    reason.contains("fuel budget of 50 instructions exhausted"),
                    "{reason}"
                );
                assert_eq!(stats.exhaustion, Some(ExhaustionReason::Fuel(50)));
            }
            VerificationOutcome::Certified { .. } => panic!("fuel-starved run must not certify"),
        }
    }

    #[test]
    fn generous_budget_matches_the_ungoverned_run() {
        let budget = Budget::unlimited().with_fuel(u64::MAX / 2);
        let governed = verify_with(
            &stable_linear_system(),
            VerificationConfig::default(),
            budget.clone(),
        );
        let ungoverned = verify_plain(&stable_linear_system());
        assert!(governed.is_certified(), "governed: {governed}");
        assert!(ungoverned.is_certified(), "ungoverned: {ungoverned}");
        let (gc, uc) = (
            governed.certificate().unwrap(),
            ungoverned.certificate().unwrap(),
        );
        assert_eq!(gc.generator(), uc.generator());
        assert_eq!(gc.level(), uc.level());
        assert_eq!(governed.stats().solver, ungoverned.stats().solver);
        assert_eq!(
            governed.stats().counterexample_witnesses,
            ungoverned.stats().counterexample_witnesses
        );
        assert_eq!(governed.stats().exhaustion, None);
        assert!(budget.fuel_used() > 0);
    }

    #[test]
    fn fuel_exhaustion_is_smt_thread_invariant() {
        // A fuel-exhausted run must report the same verdict, reason, solver
        // statistics, and fuel consumption at every solver thread count —
        // fuel forces the deterministic sequential search path.
        let mut observed = Vec::new();
        for smt_threads in [1usize, 2, 4] {
            let config = VerificationConfig {
                smt_threads,
                ..VerificationConfig::default()
            };
            let budget = Budget::unlimited().with_fuel(200);
            let outcome = verify_with(&stable_linear_system(), config, budget.clone());
            let VerificationOutcome::Inconclusive { reason, stats } = outcome else {
                panic!("fuel-starved run must be inconclusive");
            };
            observed.push((reason, stats.exhaustion, stats.solver, budget.fuel_used()));
        }
        assert_eq!(observed[0], observed[1]);
        assert_eq!(observed[1], observed[2]);
        assert_eq!(observed[0].1, Some(ExhaustionReason::Fuel(200)));
    }

    #[test]
    fn stage_timings_are_consistent() {
        let timings = StageTimings {
            simulation: Duration::from_millis(5),
            lp: Duration::from_millis(10),
            smt_decrease: Duration::from_millis(20),
            level_set: Duration::from_millis(5),
            total: Duration::from_millis(50),
        };
        assert_eq!(timings.other(), Duration::from_millis(15));
        let stats = VerificationStats {
            lp_solves: 2,
            smt_decrease_checks: 4,
            timings,
            ..VerificationStats::default()
        };
        assert_eq!(stats.avg_lp_time(), Duration::from_millis(5));
        assert_eq!(stats.avg_smt_time(), Duration::from_millis(5));
        assert_eq!(VerificationStats::default().avg_lp_time(), Duration::ZERO);
    }

    #[test]
    fn config_builder_validates_at_construction() {
        let built = VerificationConfig::builder()
            .num_seed_traces(8)
            .seed(99)
            .smt_threads(2)
            .build()
            .unwrap();
        assert_eq!(built.num_seed_traces, 8);
        assert_eq!(built.seed, 99);
        assert!(VerificationConfig::builder().delta(0.0).build().is_err());
        assert!(VerificationConfig::builder().delta(-1e-4).build().is_err());
        assert!(VerificationConfig::builder()
            .num_seed_traces(0)
            .build()
            .is_err());
        assert!(VerificationConfig::builder()
            .max_candidate_iterations(0)
            .build()
            .is_err());
        assert!(VerificationConfig::builder()
            .max_samples_per_trace(1)
            .build()
            .is_err());
        assert!(VerificationConfig::builder().sim_dt(0.0).build().is_err());
        assert!(VerificationConfig::builder()
            .gamma(f64::NAN)
            .build()
            .is_err());
        let err = VerificationConfig::builder()
            .delta(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("delta"), "{err}");
    }

    #[test]
    fn config_accessors() {
        let verifier = Verifier::default();
        assert_eq!(verifier.config().gamma, 1e-6);
        assert_eq!(verifier.config().num_seed_traces, 20);
    }
}
