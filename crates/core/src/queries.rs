//! Construction of the paper's SMT queries (5), (6), and (7).

use nncps_deltasat::{CompiledFormula, Constraint, Formula};
use nncps_expr::Expr;
use nncps_interval::IntervalBox;

use crate::{ClosedLoopSystem, GeneratorFunction};

/// Builds the δ-SAT queries used by the verification procedure.
///
/// All three queries are *negations* of the desired properties, so an `Unsat`
/// answer from the solver certifies the property:
///
/// * **query (5)** — `∃x ∈ D : x ∉ X0 ∧ (∇W)ᵀ·f(x) ≥ −γ`
///   (negation of the decrease condition),
/// * **query (6)** — `∃x ∈ X0 : W(x) > ℓ`
///   (negation of `X0 ⊆ L`),
/// * **query (7)** — `∃x : W(x) ≤ ℓ ∧ x ∈ U`
///   (negation of `L ∩ U = ∅`).
///
/// # Examples
///
/// ```
/// use nncps_barrier::{ClosedLoopSystem, GeneratorFunction, QueryBuilder, SafetySpec};
/// use nncps_deltasat::DeltaSolver;
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
/// use nncps_linalg::{Matrix, Vector};
///
/// // Stable linear system x' = -x, y' = -y with W(x) = x² + y².
/// let system = ClosedLoopSystem::new(
///     vec![-Expr::var(0), -Expr::var(1)],
///     SafetySpec::rectangular(
///         IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
///         IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
///     ),
/// );
/// let w = GeneratorFunction::new(Matrix::identity(2), Vector::zeros(2), 0.0);
/// let (formula, domain) = QueryBuilder::new(&system, 1e-6).decrease_query(&w);
/// // W strictly decreases along this flow, so query (5) must be UNSAT.
/// assert!(DeltaSolver::new(1e-3).solve(&formula, &domain).is_unsat());
/// ```
#[derive(Debug, Clone)]
pub struct QueryBuilder<'a> {
    system: &'a ClosedLoopSystem,
    gamma: f64,
}

impl<'a> QueryBuilder<'a> {
    /// Creates a query builder with the decrease slack `γ` (the paper uses
    /// `γ = 10⁻⁶`).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is negative.
    pub fn new(system: &'a ClosedLoopSystem, gamma: f64) -> Self {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        QueryBuilder { system, gamma }
    }

    /// The decrease slack `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The Lie derivative `(∇W)ᵀ·f(x)` as a symbolic expression.
    pub fn lie_derivative(&self, generator: &GeneratorFunction) -> Expr {
        let grad = generator.gradient_exprs();
        let mut lie = Expr::constant(0.0);
        for (g, f) in grad.iter().zip(self.system.vector_field()) {
            lie = lie + g.clone() * f.clone();
        }
        lie.simplified()
    }

    /// Query (5): the negated decrease condition over `D \ X0`, together with
    /// the solver domain (`D`).
    pub fn decrease_query(&self, generator: &GeneratorFunction) -> (Formula, IntervalBox) {
        let spec = self.system.spec();
        let lie = self.lie_derivative(generator);
        let formula = Formula::and(vec![
            spec.outside_initial_set(),
            Formula::atom(Constraint::ge(lie, -self.gamma)),
        ]);
        (formula, spec.domain().clone())
    }

    /// Query (5) pre-compiled for the solver's tape evaluator.
    ///
    /// The Lie derivative of an NN-controlled system repeats every neuron
    /// pre-activation across the chain-rule terms; compiling the query up
    /// front deduplicates them once, outside the pipeline's timed SMT
    /// section, and each clause of the decrease query shares one evaluation
    /// tape.  The gradient bundles that power the solver's derivative-guided
    /// cuts (symbolic differentiation of every clause constraint, lowered
    /// through the same CSE compiler) are built here too, so the timed
    /// branch-and-prune section starts with everything lowered.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_barrier::{ClosedLoopSystem, GeneratorFunction, QueryBuilder, SafetySpec};
    /// use nncps_deltasat::DeltaSolver;
    /// use nncps_expr::Expr;
    /// use nncps_interval::IntervalBox;
    /// use nncps_linalg::{Matrix, Vector};
    ///
    /// let system = ClosedLoopSystem::new(
    ///     vec![-Expr::var(0), -Expr::var(1)],
    ///     SafetySpec::rectangular(
    ///         IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
    ///         IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
    ///     ),
    /// );
    /// let w = GeneratorFunction::new(Matrix::identity(2), Vector::zeros(2), 0.0);
    /// let (query, domain) = QueryBuilder::new(&system, 1e-6).compiled_decrease_query(&w);
    /// assert!(DeltaSolver::new(1e-3).solve_compiled(&query, &domain).is_unsat());
    /// ```
    pub fn compiled_decrease_query(
        &self,
        generator: &GeneratorFunction,
    ) -> (CompiledFormula, IntervalBox) {
        let (formula, domain) = self.decrease_query(generator);
        let compiled = CompiledFormula::compile(&formula);
        compiled.ensure_gradients();
        (compiled, domain)
    }

    /// Query (6): the negated initial-set containment `∃x ∈ X0 : W(x) > ℓ`,
    /// together with the solver domain (`X0`).
    pub fn initial_containment_query(
        &self,
        generator: &GeneratorFunction,
        level: f64,
    ) -> (Formula, IntervalBox) {
        let spec = self.system.spec();
        let formula = Formula::atom(Constraint::gt(generator.to_expr(), level));
        (formula, spec.initial_set().clone())
    }

    /// Query (7): the negated unsafe-set disjointness
    /// `∃x : W(x) ≤ ℓ ∧ x ∈ U`, together with a solver domain that is
    /// guaranteed to contain every possible witness (the bounding box of the
    /// sublevel set `{W ≤ ℓ}`).
    ///
    /// Returns `None` when the quadratic part of `W` is not positive definite,
    /// in which case the sublevel set may be unbounded and no finite solver
    /// domain is sound.
    pub fn unsafe_disjointness_query(
        &self,
        generator: &GeneratorFunction,
        level: f64,
    ) -> Option<(Formula, IntervalBox)> {
        let spec = self.system.spec();
        let bounds = generator.sublevel_bounding_box(level)?;
        let domain = IntervalBox::from_bounds(&bounds);
        let formula = Formula::and(vec![
            Formula::atom(Constraint::le(generator.to_expr(), level)),
            spec.inside_unsafe_set(),
        ]);
        Some((formula, domain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SafetySpec;
    use nncps_deltasat::DeltaSolver;
    use nncps_linalg::{Matrix, Vector};

    /// A stable linear closed loop x' = -x, y' = -y with the paper-style
    /// rectangular specification.
    fn stable_system() -> ClosedLoopSystem {
        ClosedLoopSystem::new(
            vec![-Expr::var(0), -Expr::var(1)],
            SafetySpec::rectangular(
                IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
                IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
            ),
        )
    }

    fn unit_generator() -> GeneratorFunction {
        GeneratorFunction::new(Matrix::identity(2), Vector::zeros(2), 0.0)
    }

    #[test]
    fn lie_derivative_of_quadratic_on_linear_system() {
        let system = stable_system();
        let builder = QueryBuilder::new(&system, 1e-6);
        let lie = builder.lie_derivative(&unit_generator());
        // For W = x^2 + y^2 and f = (-x, -y): ∇W·f = -2(x^2 + y^2).
        for &p in &[[1.0, 2.0], [0.3, -0.7], [-2.0, 0.0]] {
            let expected = -2.0 * (p[0] * p[0] + p[1] * p[1]);
            assert!((lie.eval(&p) - expected).abs() < 1e-10);
        }
        assert_eq!(builder.gamma(), 1e-6);
    }

    #[test]
    fn decrease_query_is_unsat_for_true_lyapunov_function() {
        let system = stable_system();
        let builder = QueryBuilder::new(&system, 1e-6);
        let (formula, domain) = builder.decrease_query(&unit_generator());
        let solver = DeltaSolver::new(1e-3);
        assert!(solver.solve(&formula, &domain).is_unsat());
    }

    #[test]
    fn decrease_query_finds_counterexample_for_bad_candidate() {
        let system = stable_system();
        let builder = QueryBuilder::new(&system, 1e-6);
        // W = x^2 - y^2 increases along some directions of the stable flow.
        let bad = GeneratorFunction::new(
            Matrix::from_diagonal(&Vector::from_slice(&[1.0, -1.0])),
            Vector::zeros(2),
            0.0,
        );
        let (formula, domain) = builder.decrease_query(&bad);
        let solver = DeltaSolver::new(1e-3);
        let result = solver.solve(&formula, &domain);
        let witness = result.witness().expect("expected a counterexample");
        // The witness must lie in D but outside X0.
        assert!(system.spec().domain().contains_point(&witness));
        assert!(!system.spec().is_initial(&witness));
    }

    #[test]
    fn containment_queries_behave_for_known_levels() {
        let system = stable_system();
        let builder = QueryBuilder::new(&system, 1e-6);
        let w = unit_generator();
        let solver = DeltaSolver::new(1e-4);

        // X0 = [-0.5, 0.5]^2, so max W on X0 is 0.5 at the corners.
        // Level 1.0 contains X0 (query (6) unsat)...
        let (q6, x0) = builder.initial_containment_query(&w, 1.0);
        assert!(solver.solve(&q6, &x0).is_unsat());
        // ...but level 0.3 does not (corner value 0.5 > 0.3).
        let (q6_bad, x0) = builder.initial_containment_query(&w, 0.3);
        assert!(solver.solve(&q6_bad, &x0).is_delta_sat());

        // The unsafe set starts at |x| >= 3, i.e. W >= 9 on U. Level 4 keeps
        // L = {W <= 4} away from U (query (7) unsat)...
        let (q7, dom) = builder.unsafe_disjointness_query(&w, 4.0).unwrap();
        assert!(solver.solve(&q7, &dom).is_unsat());
        // ...but level 10 lets the sublevel set reach the unsafe region.
        let (q7_bad, dom) = builder.unsafe_disjointness_query(&w, 10.0).unwrap();
        assert!(solver.solve(&q7_bad, &dom).is_delta_sat());
    }

    #[test]
    fn unsafe_query_requires_positive_definite_quadratic_part() {
        let system = stable_system();
        let builder = QueryBuilder::new(&system, 1e-6);
        let indefinite = GeneratorFunction::new(
            Matrix::from_diagonal(&Vector::from_slice(&[1.0, -1.0])),
            Vector::zeros(2),
            0.0,
        );
        assert!(builder
            .unsafe_disjointness_query(&indefinite, 1.0)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "gamma must be non-negative")]
    fn negative_gamma_panics() {
        let system = stable_system();
        let _ = QueryBuilder::new(&system, -1.0);
    }
}
