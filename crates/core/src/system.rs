//! The closed-loop system model handed to the verifier.

use nncps_expr::Expr;
use nncps_sim::{Dynamics, ExprDynamics, SymbolicDynamics};

use crate::SafetySpec;

/// A closed-loop autonomous system `ẋ = f(x)` together with its safety
/// specification.
///
/// The vector field is given *symbolically* (one [`Expr`] per state
/// component).  This is deliberate: the same expression tree is used both to
/// simulate the system (for the LP constraints) and inside the δ-SAT queries
/// (for the soundness-critical checks), which realises the paper's assumption
/// that the deployed dynamics and the solver share one interpretation of the
/// network weights and activation functions.
///
/// # Examples
///
/// ```
/// use nncps_barrier::{ClosedLoopSystem, SafetySpec};
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
///
/// let system = ClosedLoopSystem::new(
///     vec![-Expr::var(0), -Expr::var(1)],
///     SafetySpec::rectangular(
///         IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
///         IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
///     ),
/// );
/// assert_eq!(system.dim(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoopSystem {
    vector_field: Vec<Expr>,
    spec: SafetySpec,
}

impl ClosedLoopSystem {
    /// Creates a system from its symbolic vector field and safety spec.
    ///
    /// # Panics
    ///
    /// Panics if the vector-field dimension differs from the specification
    /// dimension, or any component references a variable outside the state.
    pub fn new(vector_field: Vec<Expr>, spec: SafetySpec) -> Self {
        assert_eq!(
            vector_field.len(),
            spec.dim(),
            "vector field dimension must match the safety specification"
        );
        for (i, component) in vector_field.iter().enumerate() {
            assert!(
                component.num_vars() <= spec.dim(),
                "component {i} references a variable outside the {}-dimensional state",
                spec.dim()
            );
        }
        ClosedLoopSystem { vector_field, spec }
    }

    /// Builds the closed loop from any symbolic plant and a safety spec —
    /// the constructor the scenario registry uses for every registered
    /// plant, regardless of its concrete type.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ClosedLoopSystem::new`].
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_barrier::{ClosedLoopSystem, SafetySpec};
    /// use nncps_expr::Expr;
    /// use nncps_interval::IntervalBox;
    /// use nncps_sim::ExprDynamics;
    ///
    /// let plant = ExprDynamics::new(vec![-Expr::var(0)]);
    /// let spec = SafetySpec::rectangular(
    ///     IntervalBox::from_bounds(&[(-0.5, 0.5)]),
    ///     IntervalBox::from_bounds(&[(-2.0, 2.0)]),
    /// );
    /// let system = ClosedLoopSystem::from_dynamics(&plant, spec);
    /// assert_eq!(system.dim(), 1);
    /// ```
    pub fn from_dynamics<D: SymbolicDynamics>(plant: &D, spec: SafetySpec) -> Self {
        ClosedLoopSystem::new(plant.symbolic_vector_field(), spec)
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.vector_field.len()
    }

    /// The symbolic vector field `f(x)`.
    pub fn vector_field(&self) -> &[Expr] {
        &self.vector_field
    }

    /// The safety specification.
    pub fn spec(&self) -> &SafetySpec {
        &self.spec
    }

    /// Evaluates the vector field numerically at a point.
    pub fn derivative(&self, state: &[f64]) -> Vec<f64> {
        self.vector_field.iter().map(|c| c.eval(state)).collect()
    }

    /// Wraps the vector field into simulatable dynamics.
    pub fn dynamics(&self) -> ExprDynamics {
        ExprDynamics::new(self.vector_field.clone())
    }
}

impl Dynamics for ClosedLoopSystem {
    fn dim(&self) -> usize {
        self.vector_field.len()
    }

    fn derivative(&self, state: &[f64]) -> Vec<f64> {
        ClosedLoopSystem::derivative(self, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_interval::IntervalBox;
    use nncps_sim::{Integrator, Simulator};

    fn stable_system() -> ClosedLoopSystem {
        ClosedLoopSystem::new(
            vec![-Expr::var(0), -Expr::var(1) * 2.0],
            SafetySpec::rectangular(
                IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
                IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
            ),
        )
    }

    #[test]
    fn accessors_and_evaluation() {
        let system = stable_system();
        assert_eq!(system.dim(), 2);
        assert_eq!(system.vector_field().len(), 2);
        assert_eq!(system.spec().dim(), 2);
        let d = system.derivative(&[1.0, 2.0]);
        assert!((d[0] + 1.0).abs() < 1e-15);
        assert!((d[1] + 4.0).abs() < 1e-15);
        let d2 = Dynamics::derivative(&system, &[1.0, 2.0]);
        assert_eq!(d, d2);
    }

    #[test]
    fn dynamics_can_be_simulated() {
        let system = stable_system();
        let sim = Simulator::new(Integrator::RungeKutta4, 0.01, 1.0);
        let trace = sim.simulate(&system.dynamics(), &[1.0, 1.0]);
        let end = trace.final_state();
        assert!((end[0] - (-1.0_f64).exp()).abs() < 1e-6);
        assert!((end[1] - (-2.0_f64).exp()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension must match")]
    fn mismatched_dimensions_panic() {
        let _ = ClosedLoopSystem::new(
            vec![-Expr::var(0)],
            SafetySpec::rectangular(
                IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
                IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
            ),
        );
    }

    #[test]
    #[should_panic(expected = "outside the 2-dimensional state")]
    fn out_of_range_variable_panics() {
        let _ = ClosedLoopSystem::new(
            vec![-Expr::var(0), Expr::var(5)],
            SafetySpec::rectangular(
                IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
                IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
            ),
        );
    }
}
