//! Simulation-guided synthesis of candidate generator functions (LP step).

use std::error::Error;
use std::fmt;

use nncps_expr::{Fingerprint, StructuralHasher};
use nncps_lp::{Comparison, LpError, LpProblem};
use nncps_sim::Trace;

use crate::{GeneratorFunction, QuadraticTemplate, SafetySpec};

/// Errors reported by [`CandidateSynthesizer::synthesize`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// No trace data has been added yet.
    NoTraceData,
    /// The LP over the accumulated constraints has no solution; the template
    /// cannot fit the observed behaviour (the paper's termination case (1)).
    Infeasible(LpError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoTraceData => write!(f, "no simulation traces have been added"),
            SynthesisError::Infeasible(e) => {
                write!(f, "generator-function LP could not be solved: {e}")
            }
        }
    }
}

impl Error for SynthesisError {}

/// Tuning knobs of the LP constraint generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisOptions {
    /// Required positivity margin `W(x_k) ≥ ε_pos` at sampled states.
    pub positivity_margin: f64,
    /// Required decrease per sample pair, relative to the step length:
    /// `W(x_{k+1}) − W(x_k) ≤ −ε_dec · ‖x_{k+1} − x_k‖`.
    pub decrease_margin: f64,
    /// Bound on the absolute value of every template coefficient (keeps the
    /// feasibility LP bounded).
    pub coefficient_bound: f64,
    /// Minimum value of the diagonal quadratic coefficients, and the ratio
    /// bounding cross terms (`|p_ij| ≤ ratio · min(p_ii, p_jj)`), which
    /// together guarantee a positive-definite quadratic part by diagonal
    /// dominance.
    pub diagonal_floor: f64,
    /// See [`SynthesisOptions::diagonal_floor`].
    pub cross_term_ratio: f64,
    /// Upper bound on the decrease-rate margin variable that the LP
    /// maximizes (keeps the objective bounded even when very few decrease
    /// rows have been generated yet).
    pub margin_cap: f64,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            positivity_margin: 1e-6,
            decrease_margin: 1e-4,
            coefficient_bound: 100.0,
            diagonal_floor: 0.005,
            cross_term_ratio: 0.9,
            margin_cap: 10.0,
        }
    }
}

/// Builds candidate generator functions from simulation traces by solving a
/// linear program over the template coefficients (the `Solve LP` block of the
/// paper's Figure 1).
///
/// Constraints generated from each trace:
///
/// * **positivity** — `W(x_k) ≥ ε_pos` at every sampled state inside the
///   domain of interest,
/// * **decrease** — `W(x_{k+1}) − W(x_k) ≤ −ε_dec·‖x_{k+1} − x_k‖` for every
///   consecutive pair whose first state lies outside `X0` (the decrease
///   condition is only required away from the initial set),
///
/// plus structural constraints that keep the LP bounded and the quadratic part
/// positive definite, and a normalization `W(x_ref) = 1` at a domain corner
/// that pins the scale of the otherwise homogeneous constraint cone.
///
/// Rather than returning an arbitrary feasible point, the LP **maximizes the
/// worst-case decrease rate** over all decrease rows (trace pairs and
/// counterexample Lie-derivative rows) via an auxiliary margin variable.  The
/// max-margin candidate is well separated from the boundary of the decrease
/// condition, which is what lets the subsequent δ-SAT check (query (5))
/// conclude UNSAT instead of returning spurious near-zero witnesses.
///
/// # Examples
///
/// ```
/// use nncps_barrier::{CandidateSynthesizer, SafetySpec};
/// use nncps_expr::Expr;
/// use nncps_interval::IntervalBox;
/// use nncps_sim::{ExprDynamics, Integrator, Simulator};
///
/// let spec = SafetySpec::rectangular(
///     IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
///     IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
/// );
/// // Traces of the contracting system x' = -x, y' = -2y.
/// let dynamics = ExprDynamics::new(vec![-Expr::var(0), -Expr::var(1) * 2.0]);
/// let simulator = Simulator::new(Integrator::RungeKutta4, 0.05, 3.0);
/// let traces = simulator.simulate_batch(&dynamics, &[vec![2.0, 1.0], vec![-1.0, 2.0]]);
///
/// let mut synthesizer = CandidateSynthesizer::new(spec);
/// synthesizer.add_traces(&traces);
/// let candidate = synthesizer.synthesize().expect("LP is feasible");
/// assert!(candidate.is_positive_definite(1e-9));
/// ```
#[derive(Debug, Clone)]
pub struct CandidateSynthesizer {
    template: QuadraticTemplate,
    spec: SafetySpec,
    options: SynthesisOptions,
    /// Accumulated trace- and counterexample-derived rows.
    rows: Vec<Row>,
    samples_used: usize,
}

/// One LP row `coefficients·w (+ margin_coeff·t) ⋈ rhs` over the template
/// coefficients `w` and the decrease-rate margin variable `t`.
#[derive(Debug, Clone)]
struct Row {
    coefficients: Vec<f64>,
    comparison: Comparison,
    rhs: f64,
    /// Coefficient of the margin variable `t` (zero for positivity rows,
    /// positive for decrease rows so that larger `t` means faster decrease).
    margin_coeff: f64,
}

impl CandidateSynthesizer {
    /// Creates a synthesizer for the given specification with default options.
    pub fn new(spec: SafetySpec) -> Self {
        Self::with_options(spec, SynthesisOptions::default())
    }

    /// Creates a synthesizer with explicit options.
    pub fn with_options(spec: SafetySpec, options: SynthesisOptions) -> Self {
        let template = QuadraticTemplate::new(spec.dim());
        CandidateSynthesizer {
            template,
            spec,
            options,
            rows: Vec::new(),
            samples_used: 0,
        }
    }

    /// The template whose coefficients are being synthesized.
    pub fn template(&self) -> &QuadraticTemplate {
        &self.template
    }

    /// Number of trace samples converted into constraints so far.
    pub fn samples_used(&self) -> usize {
        self.samples_used
    }

    /// Number of LP rows generated from traces so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds the positivity and decrease constraints extracted from a trace.
    ///
    /// Samples outside the domain of interest are ignored (the paper only
    /// reasons over `D`).
    pub fn add_trace(&mut self, trace: &Trace) {
        let domain = self.spec.domain().clone();
        for (_, state) in trace.iter() {
            if !domain.contains_point(state) {
                continue;
            }
            // Positivity: W(x_k) >= eps_pos.
            self.rows.push(Row {
                coefficients: self.template.basis_values(state),
                comparison: Comparison::Ge,
                rhs: self.options.positivity_margin,
                margin_coeff: 0.0,
            });
            self.samples_used += 1;
        }
        for ((_, current), (_, next)) in trace.consecutive_pairs() {
            if !domain.contains_point(current) || !domain.contains_point(next) {
                continue;
            }
            // The decrease condition is only required outside X0.
            if self.spec.is_initial(current) {
                continue;
            }
            let step_length: f64 = current
                .iter()
                .zip(next.iter())
                .map(|(a, b)| (b - a) * (b - a))
                .sum::<f64>()
                .sqrt();
            if step_length < 1e-12 {
                continue;
            }
            let basis_current = self.template.basis_values(current);
            let basis_next = self.template.basis_values(next);
            let row: Vec<f64> = basis_next
                .iter()
                .zip(basis_current.iter())
                .map(|(b, a)| b - a)
                .collect();
            // W(next) − W(cur) + t·‖Δx‖ ≤ −ε_dec·‖Δx‖, i.e. the decrease rate
            // per unit path length is at least ε_dec + t.
            self.rows.push(Row {
                coefficients: row,
                comparison: Comparison::Le,
                rhs: -self.options.decrease_margin * step_length,
                margin_coeff: step_length,
            });
        }
    }

    /// Adds constraints from several traces.
    pub fn add_traces<'a, I: IntoIterator<Item = &'a Trace>>(&mut self, traces: I) {
        for trace in traces {
            self.add_trace(trace);
        }
    }

    /// Adds a counterexample constraint from a state `x*` where the decrease
    /// condition failed, given the vector-field value `f(x*)`.
    ///
    /// Two rows are added:
    ///
    /// * a Lie-derivative decrease row `(∇W)(x*)·f(x*) ≤ −margin`, which is
    ///   linear in the template coefficients and therefore cuts the current
    ///   (failing) candidate out of the LP feasible set, and
    /// * a positivity row `W(x*) ≥ ε_pos`.
    ///
    /// This is the refinement step of the paper's Figure 1: when the SMT
    /// decrease check (query (5)) returns a witness, the witness is folded
    /// back into the LP so that the next candidate no longer fails there.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `derivative` do not match the template dimension.
    pub fn add_counterexample(&mut self, state: &[f64], derivative: &[f64], margin: f64) {
        // (∇W)(x*)·f(x*) + t ≤ −margin: the Lie derivative at the witness must
        // decrease at a rate of at least `margin + t`.
        self.rows.push(Row {
            coefficients: self.template.lie_basis_values(state, derivative),
            comparison: Comparison::Le,
            rhs: -margin.abs(),
            margin_coeff: 1.0,
        });
        self.rows.push(Row {
            coefficients: self.template.basis_values(state),
            comparison: Comparison::Ge,
            rhs: self.options.positivity_margin,
            margin_coeff: 0.0,
        });
        self.samples_used += 1;
    }

    /// A 128-bit identity key over *every* input [`synthesize`] reads: the
    /// template dimension, the options, the specification (the domain corner
    /// used for normalization), and the exact bits of all accumulated
    /// constraint rows.
    ///
    /// [`synthesize`] is a pure function of this state, so the sweep
    /// engine's warm-start layer memoizes its result under this key: a hit
    /// returns bit-identical candidate coefficients to re-solving the LP.
    ///
    /// [`synthesize`]: CandidateSynthesizer::synthesize
    pub fn fingerprint(&self) -> Fingerprint {
        let mut hasher = StructuralHasher::new();
        hasher.write_u8(0x30);
        hasher.write_usize(self.template.dim());
        for value in [
            self.options.positivity_margin,
            self.options.decrease_margin,
            self.options.coefficient_bound,
            self.options.diagonal_floor,
            self.options.cross_term_ratio,
            self.options.margin_cap,
        ] {
            hasher.write_f64(value);
        }
        self.spec.write_structural(&mut hasher);
        hasher.write_usize(self.rows.len());
        for row in &self.rows {
            hasher.write_usize(row.coefficients.len());
            for &c in &row.coefficients {
                hasher.write_f64(c);
            }
            hasher.write_u8(match row.comparison {
                Comparison::Le => 0,
                Comparison::Ge => 1,
                Comparison::Eq => 2,
            });
            hasher.write_f64(row.rhs);
            hasher.write_f64(row.margin_coeff);
        }
        hasher.finish()
    }

    /// Solves the LP over all accumulated constraints and returns the
    /// candidate generator function.
    ///
    /// # Errors
    ///
    /// * [`SynthesisError::NoTraceData`] if no traces were added,
    /// * [`SynthesisError::Infeasible`] if the LP has no solution.
    pub fn synthesize(&self) -> Result<GeneratorFunction, SynthesisError> {
        if self.rows.is_empty() {
            return Err(SynthesisError::NoTraceData);
        }
        let n_coeffs = self.template.num_coefficients();
        let dim = self.template.dim();
        // Variables: the template coefficients plus the decrease-rate margin t.
        let margin_var = n_coeffs;
        let num_vars = n_coeffs + 1;
        let mut lp = LpProblem::new(num_vars);

        // Maximize the margin (the LP minimizes, so negate).
        let mut objective = vec![0.0; num_vars];
        objective[margin_var] = -1.0;
        lp.set_objective(&objective);

        // Trace- and counterexample-derived constraints.
        for row in &self.rows {
            let mut coefficients = row.coefficients.clone();
            coefficients.push(row.margin_coeff);
            lp.add_constraint(&coefficients, row.comparison, row.rhs);
        }

        // Margin bounds: 0 ≤ t ≤ cap.
        let mut row = vec![0.0; num_vars];
        row[margin_var] = 1.0;
        lp.add_constraint(&row, Comparison::Ge, 0.0);
        lp.add_constraint(&row, Comparison::Le, self.options.margin_cap);

        // Coefficient bounds (keep the feasibility problem bounded).
        let bound = self.options.coefficient_bound;
        for k in 0..n_coeffs {
            let mut row = vec![0.0; num_vars];
            row[k] = 1.0;
            lp.add_constraint(&row, Comparison::Le, bound);
            lp.add_constraint(&row, Comparison::Ge, -bound);
        }

        // Positive-definiteness by diagonal dominance of the quadratic part:
        // p_ii >= floor and |p_ij| <= ratio * p_ii, |p_ij| <= ratio * p_jj.
        for i in 0..dim {
            let mut row = vec![0.0; num_vars];
            row[self.template.quadratic_index(i, i)] = 1.0;
            lp.add_constraint(&row, Comparison::Ge, self.options.diagonal_floor);
        }
        let ratio = self.options.cross_term_ratio;
        for i in 0..dim {
            for j in (i + 1)..dim {
                // The template's cross coefficient multiplies x_i x_j once, so
                // the entry of the symmetric matrix P is half of it.
                let cross = self.template.quadratic_index(i, j);
                for &diag in &[i, j] {
                    let diag_index = self.template.quadratic_index(diag, diag);
                    // 0.5 * cross <= ratio * p_dd   and   -0.5 * cross <= ratio * p_dd
                    let mut row = vec![0.0; num_vars];
                    row[cross] = 0.5;
                    row[diag_index] = -ratio;
                    lp.add_constraint(&row, Comparison::Le, 0.0);
                    let mut row = vec![0.0; num_vars];
                    row[cross] = -0.5;
                    row[diag_index] = -ratio;
                    lp.add_constraint(&row, Comparison::Le, 0.0);
                }
            }
        }

        // Normalization: W(x_ref) = 1 at a corner of the domain of interest.
        let x_ref: Vec<f64> = (0..dim).map(|i| self.spec.domain()[i].hi()).collect();
        let mut normalization = self.template.basis_values(&x_ref);
        normalization.push(0.0);
        lp.add_constraint(&normalization, Comparison::Eq, 1.0);

        let solution = lp.solve().map_err(SynthesisError::Infeasible)?;
        Ok(self.template.instantiate(&solution.values()[..n_coeffs]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncps_expr::Expr;
    use nncps_interval::IntervalBox;
    use nncps_sim::{ExprDynamics, Integrator, Simulator};

    fn spec() -> SafetySpec {
        SafetySpec::rectangular(
            IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
            IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
        )
    }

    fn stable_traces() -> Vec<Trace> {
        // x' = -x, y' = -2y: trajectories contract toward the origin.
        let dynamics = ExprDynamics::new(vec![-Expr::var(0), -Expr::var(1) * 2.0]);
        let sim = Simulator::new(Integrator::RungeKutta4, 0.05, 3.0);
        sim.simulate_batch(
            &dynamics,
            &[
                vec![2.5, 1.0],
                vec![-2.0, 2.0],
                vec![1.0, -2.5],
                vec![-2.5, -2.0],
                vec![2.0, 2.5],
            ],
        )
    }

    #[test]
    fn synthesizer_accumulates_constraints() {
        let mut synthesizer = CandidateSynthesizer::new(spec());
        assert_eq!(synthesizer.num_constraints(), 0);
        assert_eq!(synthesizer.samples_used(), 0);
        assert_eq!(synthesizer.template().dim(), 2);
        let traces = stable_traces();
        synthesizer.add_traces(&traces);
        assert!(synthesizer.num_constraints() > 100);
        assert!(synthesizer.samples_used() > 50);
    }

    #[test]
    fn synthesize_without_traces_errors() {
        let synthesizer = CandidateSynthesizer::new(spec());
        assert_eq!(
            synthesizer.synthesize().unwrap_err(),
            SynthesisError::NoTraceData
        );
        assert!(SynthesisError::NoTraceData.to_string().contains("traces"));
    }

    #[test]
    fn candidate_for_stable_linear_system_decreases_along_traces() {
        let mut synthesizer = CandidateSynthesizer::new(spec());
        let traces = stable_traces();
        synthesizer.add_traces(&traces);
        let candidate = synthesizer.synthesize().expect("LP should be feasible");
        // The candidate must be positive definite by construction.
        assert!(candidate.is_positive_definite(1e-9));
        // And must decrease along every recorded sample pair outside X0.
        for trace in &traces {
            for ((_, a), (_, b)) in trace.consecutive_pairs() {
                if spec().is_initial(a) || !spec().domain().contains_point(b) {
                    continue;
                }
                assert!(
                    candidate.evaluate(b) < candidate.evaluate(a) + 1e-9,
                    "no decrease from {a:?} to {b:?}"
                );
            }
        }
        // Normalization pins W at the domain corner to 1.
        assert!((candidate.evaluate(&[3.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_for_periodic_orbit() {
        // A harmonic oscillator traces a closed orbit; no function can
        // strictly decrease all the way around a loop, so the LP generated
        // from a full period must be infeasible.
        let dynamics = ExprDynamics::new(vec![Expr::var(1), -Expr::var(0)]);
        let sim = Simulator::new(
            Integrator::RungeKutta4,
            0.05,
            2.0 * std::f64::consts::PI + 0.2,
        );
        let traces = sim.simulate_batch(&dynamics, &[vec![2.0, 0.0]]);
        let mut synthesizer = CandidateSynthesizer::new(spec());
        synthesizer.add_traces(&traces);
        let err = synthesizer.synthesize().unwrap_err();
        assert!(matches!(err, SynthesisError::Infeasible(_)));
        assert!(err.to_string().contains("LP"));
    }

    #[test]
    fn samples_outside_domain_are_ignored() {
        let mut synthesizer = CandidateSynthesizer::new(spec());
        let mut trace = Trace::new(2);
        trace.push(0.0, vec![10.0, 10.0]);
        trace.push(0.1, vec![9.0, 9.0]);
        synthesizer.add_trace(&trace);
        assert_eq!(synthesizer.num_constraints(), 0);
        assert_eq!(synthesizer.samples_used(), 0);
    }

    #[test]
    fn counterexample_rows_cut_off_failing_candidates() {
        // Synthesize a candidate, then feed back a counterexample where the
        // Lie derivative of that candidate is positive; the refined candidate
        // must strictly decrease there while the old one did not.
        let mut synthesizer = CandidateSynthesizer::new(spec());
        synthesizer.add_traces(&stable_traces());
        let first = synthesizer.synthesize().expect("seed LP feasible");

        // A rotated vector field value chosen so the first candidate grows:
        // pick f(x*) aligned with the gradient of the first candidate.
        let witness = [2.0, 1.5];
        let gradient = first.gradient(&witness);
        let lie_before: f64 = gradient.iter().map(|g| g * g).sum();
        assert!(lie_before > 0.0);
        synthesizer.add_counterexample(&witness, &gradient, 1e-6);
        let refined = synthesizer.synthesize().expect("refined LP feasible");
        let lie_after: f64 = refined
            .gradient(&witness)
            .iter()
            .zip(gradient.iter())
            .map(|(g, f)| g * f)
            .sum();
        assert!(
            lie_after <= -1e-6 + 1e-9,
            "refined candidate still fails at the counterexample: {lie_after}"
        );
        assert_eq!(synthesizer.samples_used(), {
            let mut baseline = CandidateSynthesizer::new(spec());
            baseline.add_traces(&stable_traces());
            baseline.samples_used() + 1
        });
    }

    #[test]
    fn synthesized_candidates_have_a_positive_decrease_margin() {
        // The max-margin objective must leave real slack in the decrease
        // rows: per unit path length the decrease exceeds the configured
        // epsilon by a visible margin rather than sitting exactly on it.
        let mut synthesizer = CandidateSynthesizer::new(spec());
        let traces = stable_traces();
        synthesizer.add_traces(&traces);
        let candidate = synthesizer.synthesize().expect("feasible LP");
        let spec = spec();
        let mut worst_rate = f64::INFINITY;
        for trace in &traces {
            for ((_, a), (_, b)) in trace.consecutive_pairs() {
                if spec.is_initial(a)
                    || !spec.domain().contains_point(a)
                    || !spec.domain().contains_point(b)
                {
                    continue;
                }
                let step: f64 = a
                    .iter()
                    .zip(b.iter())
                    .map(|(p, q)| (q - p) * (q - p))
                    .sum::<f64>()
                    .sqrt();
                if step > 1e-9 {
                    worst_rate =
                        worst_rate.min((candidate.evaluate(a) - candidate.evaluate(b)) / step);
                }
            }
        }
        let epsilon = SynthesisOptions::default().decrease_margin;
        assert!(
            worst_rate > 10.0 * epsilon,
            "max-margin LP left almost no slack: worst decrease rate {worst_rate}"
        );
    }

    #[test]
    fn options_are_respected() {
        let options = SynthesisOptions {
            diagonal_floor: 0.5,
            ..SynthesisOptions::default()
        };
        let mut synthesizer = CandidateSynthesizer::with_options(spec(), options);
        synthesizer.add_traces(&stable_traces());
        let candidate = synthesizer.synthesize().unwrap();
        assert!(candidate.quadratic_part()[(0, 0)] >= 0.5 - 1e-9);
        assert!(candidate.quadratic_part()[(1, 1)] >= 0.5 - 1e-9);
    }
}
