//! Public linear-program description and solution types.

use std::error::Error;
use std::fmt;

use crate::simplex;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparison {
    /// `a·x <= b`
    Le,
    /// `a·x >= b`
    Ge,
    /// `a·x = b`
    Eq,
}

impl Comparison {
    /// Symbol used for display.
    pub fn symbol(self) -> &'static str {
        match self {
            Comparison::Le => "<=",
            Comparison::Ge => ">=",
            Comparison::Eq => "=",
        }
    }
}

/// Errors reported by [`LpProblem::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// The constraint set is empty of feasible points.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// A constraint row or the objective has the wrong number of coefficients.
    DimensionMismatch {
        /// Expected number of variables.
        expected: usize,
        /// Number of coefficients supplied.
        found: usize,
    },
    /// The simplex iteration limit was exceeded (numerically pathological input).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch { expected, found } => write!(
                f,
                "constraint has {found} coefficients but the problem has {expected} variables"
            ),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl Error for LpError {}

/// A single linear constraint `coefficients · x ⋈ rhs`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LinearConstraint {
    pub(crate) coefficients: Vec<f64>,
    pub(crate) comparison: Comparison,
    pub(crate) rhs: f64,
}

/// Solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    values: Vec<f64>,
    objective: f64,
}

impl LpSolution {
    pub(crate) fn new(values: Vec<f64>, objective: f64) -> Self {
        LpSolution { values, objective }
    }

    /// Optimal values of the decision variables.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Optimal objective value (of the minimization problem).
    pub fn objective(&self) -> f64 {
        self.objective
    }
}

/// A linear program in the form `minimize cᵀx subject to Ax ⋈ b`, with all
/// decision variables free (unrestricted in sign).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<LinearConstraint>,
}

impl LpProblem {
    /// Creates a problem with `num_vars` free decision variables and a zero
    /// objective (a pure feasibility problem until an objective is set).
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficients `c` of `minimize cᵀx`.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the number of variables.
    pub fn set_objective(&mut self, coefficients: &[f64]) {
        assert_eq!(
            coefficients.len(),
            self.num_vars,
            "objective length must equal the number of variables"
        );
        self.objective = coefficients.to_vec();
    }

    /// Adds the constraint `coefficients · x ⋈ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient slice length differs from the number of
    /// variables.
    pub fn add_constraint(&mut self, coefficients: &[f64], comparison: Comparison, rhs: f64) {
        assert_eq!(
            coefficients.len(),
            self.num_vars,
            "constraint length must equal the number of variables"
        );
        self.constraints.push(LinearConstraint {
            coefficients: coefficients.to_vec(),
            comparison,
            rhs,
        });
    }

    /// Solves the linear program.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] if no point satisfies all constraints.
    /// * [`LpError::Unbounded`] if the objective can decrease without bound.
    /// * [`LpError::IterationLimit`] on pathological cycling (should not occur
    ///   thanks to Bland's rule, but guarded against defensively).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        simplex::solve(self)
    }

    /// Checks whether a candidate point satisfies every constraint to within
    /// `tolerance` (useful for validating solutions in tests and callers).
    pub fn is_feasible(&self, point: &[f64], tolerance: f64) -> bool {
        if point.len() != self.num_vars {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c
                .coefficients
                .iter()
                .zip(point.iter())
                .map(|(a, x)| a * x)
                .sum();
            match c.comparison {
                Comparison::Le => lhs <= c.rhs + tolerance,
                Comparison::Ge => lhs >= c.rhs - tolerance,
                Comparison::Eq => (lhs - c.rhs).abs() <= tolerance,
            }
        })
    }

    /// Evaluates the objective at a point.
    ///
    /// # Panics
    ///
    /// Panics if the point length differs from the number of variables.
    pub fn objective_value(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.num_vars, "point length mismatch");
        self.objective
            .iter()
            .zip(point.iter())
            .map(|(c, x)| c * x)
            .sum()
    }

    pub(crate) fn objective(&self) -> &[f64] {
        &self.objective
    }

    pub(crate) fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }
}

impl fmt::Display for LpProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "minimize {:?}", self.objective)?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            writeln!(
                f,
                "  {:?} {} {}",
                c.coefficients,
                c.comparison.symbol(),
                c.rhs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(&[1.0, -1.0]);
        lp.add_constraint(&[1.0, 1.0], Comparison::Le, 3.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.objective_value(&[2.0, 1.0]), 1.0);
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[4.0, 0.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0], 1e-9));
        let s = format!("{lp}");
        assert!(s.contains("minimize"));
        assert!(s.contains("<="));
        assert_eq!(Comparison::Eq.symbol(), "=");
        assert_eq!(Comparison::Ge.symbol(), ">=");
    }

    #[test]
    fn error_display() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::IterationLimit.to_string().contains("iteration"));
        let e = LpError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    #[should_panic(expected = "objective length")]
    fn wrong_objective_length_panics() {
        let mut lp = LpProblem::new(2);
        lp.set_objective(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "constraint length")]
    fn wrong_constraint_length_panics() {
        let mut lp = LpProblem::new(2);
        lp.add_constraint(&[1.0], Comparison::Le, 1.0);
    }
}
