//! A dense two-phase primal simplex linear-programming solver.
//!
//! The barrier-certificate procedure of the paper repeatedly solves small
//! linear programs: the coefficients of the templated generator function
//! `W(x)` are the decision variables, and every simulation sample contributes
//! a linear constraint (positivity of `W` outside the initial set, decrease of
//! `W` along the trace).  The problems have tens of variables and at most a
//! few thousand constraints, so a dense tableau simplex is entirely adequate
//! and keeps the workspace dependency-free.
//!
//! The solver handles free (unbounded-sign) variables by internally splitting
//! them into positive and negative parts, uses a two-phase method to find an
//! initial basic feasible solution, and applies Bland's rule to guarantee
//! termination in the presence of degeneracy.
//!
//! # Examples
//!
//! ```
//! use nncps_lp::{Comparison, LpProblem};
//!
//! // maximize x + y  subject to  x + 2y <= 4,  3x + y <= 6,  x, y free.
//! let mut lp = LpProblem::new(2);
//! lp.set_objective(&[-1.0, -1.0]); // the solver minimizes
//! lp.add_constraint(&[1.0, 2.0], Comparison::Le, 4.0);
//! lp.add_constraint(&[3.0, 1.0], Comparison::Le, 6.0);
//! // Keep the region bounded from below so the LP has an optimum.
//! lp.add_constraint(&[1.0, 0.0], Comparison::Ge, 0.0);
//! lp.add_constraint(&[0.0, 1.0], Comparison::Ge, 0.0);
//! let solution = lp.solve()?;
//! assert!((solution.objective() + 2.8).abs() < 1e-9); // optimum at (1.6, 1.2)
//! # Ok::<(), nncps_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod problem;
mod simplex;

pub use problem::{Comparison, LpError, LpProblem, LpSolution};
