//! Two-phase primal simplex on a dense tableau.
//!
//! The solver works on the standard form obtained by
//!
//! 1. splitting every free variable `x_j` into `x_j⁺ - x_j⁻` with both parts
//!    non-negative,
//! 2. flipping constraint rows so every right-hand side is non-negative,
//! 3. adding a slack variable for `<=` rows, a surplus variable for `>=`
//!    rows, and an artificial variable for `>=`/`=` rows.
//!
//! Phase 1 minimizes the sum of the artificial variables; a positive optimum
//! proves infeasibility.  Phase 2 then minimizes the true objective starting
//! from the feasible basis produced by phase 1.  Bland's anti-cycling rule is
//! used throughout.

use crate::problem::{Comparison, LinearConstraint, LpError, LpProblem, LpSolution};

const EPS: f64 = 1e-9;
/// Reduced costs above `-UNBOUNDED_TOL × cost scale` are treated as rounding
/// noise when their column admits no pivot: free variables are split into
/// `x⁺ − x⁻` whose columns are exact negatives of each other, and after many
/// pivots the accumulated drift can leave such a column with a slightly
/// negative reduced cost and no positive entry, which is a spurious
/// unboundedness certificate.  The tolerance is relative to the magnitude of
/// the initial reduced costs (drift scales with the data), so an LP whose
/// objective is legitimately tiny still gets a correct `Unbounded` verdict.
const UNBOUNDED_TOL: f64 = 1e-6;
const MAX_ITERATIONS: usize = 200_000;

/// Dense simplex tableau.
struct Tableau {
    /// Row-major tableau: `rows x (cols + 1)`, last column is the RHS.
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Index of the basic variable for each row.
    basis: Vec<usize>,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * (self.cols + 1) + c]
    }

    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * (self.cols + 1) + c]
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// Performs a pivot on (`pivot_row`, `pivot_col`).
    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        nncps_fault::panic_point(nncps_fault::SITE_LP_PIVOT);
        let width = self.cols + 1;
        let pivot_value = self.at(pivot_row, pivot_col);
        debug_assert!(pivot_value.abs() > EPS, "pivot too small");
        // Normalize the pivot row.
        for c in 0..width {
            *self.at_mut(pivot_row, c) /= pivot_value;
        }
        // Eliminate the pivot column from all other rows.
        for r in 0..self.rows {
            if r == pivot_row {
                continue;
            }
            let factor = self.at(r, pivot_col);
            if factor.abs() <= EPS {
                continue;
            }
            for c in 0..width {
                let delta = factor * self.at(pivot_row, c);
                *self.at_mut(r, c) -= delta;
            }
        }
        self.basis[pivot_row] = pivot_col;
    }
}

/// Runs the simplex method on the tableau for the given objective row
/// (reduced costs), minimizing.  `allowed_cols` restricts entering variables.
///
/// The entering variable is chosen with Dantzig's rule (most negative reduced
/// cost) for speed; after a large number of iterations the solver falls back
/// to Bland's rule, which guarantees termination on degenerate problems.
///
/// Returns `Ok(objective_value)` on optimality.
fn run_simplex(
    tableau: &mut Tableau,
    costs: &mut [f64],
    objective_value: &mut f64,
    allowed_cols: &[bool],
) -> Result<(), LpError> {
    // Switch to Bland's anti-cycling rule once the iteration count suggests
    // the faster Dantzig rule might be cycling.
    let bland_threshold = 50 * (tableau.rows + tableau.cols).max(100);
    // Scale for the "decisively negative" unboundedness test below.
    let cost_scale = costs
        .iter()
        .fold(0.0_f64, |acc, c| acc.max(c.abs()))
        .max(EPS);
    let unbounded_threshold = UNBOUNDED_TOL * cost_scale;
    // Columns skipped during the current entering-variable search because
    // they admit no pivot at noise-level negative cost (reset each pivot).
    let mut skipped = vec![false; tableau.cols];
    for iteration in 0..MAX_ITERATIONS {
        let use_bland = iteration >= bland_threshold;
        skipped.iter_mut().for_each(|s| *s = false);
        loop {
            // Entering variable: Bland's rule takes the lowest eligible
            // index, Dantzig's the most negative reduced cost.
            let entering = if use_bland {
                (0..tableau.cols).find(|&c| allowed_cols[c] && !skipped[c] && costs[c] < -EPS)
            } else {
                let mut best: Option<(usize, f64)> = None;
                for c in 0..tableau.cols {
                    if allowed_cols[c]
                        && !skipped[c]
                        && costs[c] < -EPS
                        && best.is_none_or(|(_, v)| costs[c] < v)
                    {
                        best = Some((c, costs[c]));
                    }
                }
                best.map(|(c, _)| c)
            };
            let Some(entering) = entering else {
                // No eligible column left (possibly after skipping
                // noise-level ones): the basis is optimal to tolerance.
                return Ok(());
            };
            // Ratio test: smallest ratio rhs / a_ij over rows with a_ij > 0.
            // Ties are broken by the smallest basis index under Bland's rule
            // and by the largest pivot magnitude (better conditioning)
            // otherwise.
            let mut pivot_row: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..tableau.rows {
                let a = tableau.at(r, entering);
                if a > EPS {
                    let ratio = tableau.rhs(r) / a;
                    let better = match pivot_row {
                        None => true,
                        Some(prev) => {
                            let prev_a = tableau.at(prev, entering);
                            ratio < best_ratio - EPS
                                || ((ratio - best_ratio).abs() <= EPS
                                    && if use_bland {
                                        tableau.basis[r] < tableau.basis[prev]
                                    } else {
                                        a > prev_a
                                    })
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        pivot_row = Some(r);
                    }
                }
            }
            match pivot_row {
                Some(r) => {
                    // Pivot, then update the reduced-cost row.
                    let factor = costs[entering];
                    tableau.pivot(r, entering);
                    if factor.abs() > EPS {
                        for (c, cost) in costs.iter_mut().enumerate().take(tableau.cols) {
                            *cost -= factor * tableau.at(r, c);
                        }
                        *objective_value -= factor * tableau.rhs(r);
                    }
                    break;
                }
                // No pivot at decisively negative cost: a true unbounded ray.
                None if costs[entering] < -unbounded_threshold => {
                    return Err(LpError::Unbounded);
                }
                // No pivot at noise-level cost (see UNBOUNDED_TOL): skip the
                // column for this search and try the next candidate.
                None => skipped[entering] = true,
            }
        }
    }
    Err(LpError::IterationLimit)
}

/// Solves the given problem with the two-phase simplex method.
pub(crate) fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let n = problem.num_vars();
    let constraints = problem.constraints();
    let m = constraints.len();

    // With no constraints the problem is unbounded unless the objective is zero.
    if m == 0 {
        return if problem.objective().iter().all(|&c| c.abs() <= EPS) {
            Ok(LpSolution::new(vec![0.0; n], 0.0))
        } else {
            Err(LpError::Unbounded)
        };
    }

    // Column layout: [x⁺ (n) | x⁻ (n) | slack/surplus (m_slack) | artificial (m_art)]
    let mut num_slack = 0usize;
    let mut num_artificial = 0usize;
    for c in constraints {
        match normalized_comparison(c) {
            Comparison::Le => num_slack += 1,
            Comparison::Ge => {
                num_slack += 1;
                num_artificial += 1;
            }
            Comparison::Eq => num_artificial += 1,
        }
    }
    let total_cols = 2 * n + num_slack + num_artificial;
    let artificial_start = 2 * n + num_slack;

    let mut tableau = Tableau {
        data: vec![0.0; m * (total_cols + 1)],
        rows: m,
        cols: total_cols,
        basis: vec![usize::MAX; m],
    };

    let mut slack_index = 0usize;
    let mut artificial_index = 0usize;
    let mut artificial_rows: Vec<usize> = Vec::new();

    for (r, c) in constraints.iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for (j, &a) in c.coefficients.iter().enumerate() {
            *tableau.at_mut(r, j) = sign * a;
            *tableau.at_mut(r, n + j) = -sign * a;
        }
        *tableau.at_mut(r, total_cols) = sign * c.rhs;
        let comparison = normalized_comparison_flip(c, flip);
        match comparison {
            Comparison::Le => {
                let col = 2 * n + slack_index;
                *tableau.at_mut(r, col) = 1.0;
                tableau.basis[r] = col;
                slack_index += 1;
            }
            Comparison::Ge => {
                let surplus_col = 2 * n + slack_index;
                *tableau.at_mut(r, surplus_col) = -1.0;
                slack_index += 1;
                let art_col = artificial_start + artificial_index;
                *tableau.at_mut(r, art_col) = 1.0;
                tableau.basis[r] = art_col;
                artificial_index += 1;
                artificial_rows.push(r);
            }
            Comparison::Eq => {
                let art_col = artificial_start + artificial_index;
                *tableau.at_mut(r, art_col) = 1.0;
                tableau.basis[r] = art_col;
                artificial_index += 1;
                artificial_rows.push(r);
            }
        }
    }

    let allowed_all = vec![true; total_cols];

    // ---- Phase 1: minimize the sum of artificial variables. ----
    if num_artificial > 0 {
        let mut costs = vec![0.0; total_cols];
        for cost in costs.iter_mut().skip(artificial_start) {
            *cost = 1.0;
        }
        let mut phase1_value = 0.0;
        // Express the phase-1 objective in terms of the non-basic variables:
        // subtract the rows whose basic variable is artificial.
        for &r in &artificial_rows {
            for (c, cost) in costs.iter_mut().enumerate().take(total_cols) {
                *cost -= tableau.at(r, c);
            }
            phase1_value -= tableau.rhs(r);
        }
        run_simplex(&mut tableau, &mut costs, &mut phase1_value, &allowed_all)?;
        // Recompute the phase-1 optimum (the sum of the artificial variables)
        // directly from the tableau instead of trusting the incrementally
        // updated value, which accumulates rounding error over thousands of
        // pivots on large problems.
        let infeasibility: f64 = (0..m)
            .filter(|&r| tableau.basis[r] >= artificial_start)
            .map(|r| tableau.rhs(r).max(0.0))
            .sum();
        let rhs_scale = constraints
            .iter()
            .map(|c| c.rhs.abs())
            .fold(1.0_f64, f64::max);
        if infeasibility > 1e-7 * rhs_scale.max(1.0) {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining artificial variables out of the basis.
        for r in 0..m {
            if tableau.basis[r] >= artificial_start && tableau.rhs(r).abs() <= 1e-7 {
                if let Some(col) = (0..artificial_start).find(|&c| tableau.at(r, c).abs() > 1e-7) {
                    tableau.pivot(r, col);
                }
            }
        }
    }

    // ---- Phase 2: minimize the true objective over non-artificial columns. ----
    let mut allowed = vec![true; total_cols];
    for flag in allowed.iter_mut().skip(artificial_start) {
        *flag = false;
    }
    let mut costs = vec![0.0; total_cols];
    for j in 0..n {
        costs[j] = problem.objective()[j];
        costs[n + j] = -problem.objective()[j];
    }
    let mut objective_value = 0.0;
    // Express the objective in terms of the current (feasible) basis.
    for r in 0..m {
        let b = tableau.basis[r];
        if b < total_cols {
            let factor = costs[b];
            if factor.abs() > EPS {
                for (c, cost) in costs.iter_mut().enumerate().take(total_cols) {
                    *cost -= factor * tableau.at(r, c);
                }
                objective_value -= factor * tableau.rhs(r);
            }
        }
    }
    run_simplex(&mut tableau, &mut costs, &mut objective_value, &allowed)?;

    // Extract the solution: basic variables take their RHS value, others zero.
    let mut extended = vec![0.0; total_cols];
    for r in 0..m {
        let b = tableau.basis[r];
        if b < total_cols {
            extended[b] = tableau.rhs(r);
        }
    }
    // If an artificial variable is still basic at a nonzero level the problem
    // is infeasible (can happen despite the phase-1 optimum check when the
    // pivot clean-up above could not remove it).
    for value in extended.iter().skip(artificial_start) {
        if value.abs() > 1e-6 {
            return Err(LpError::Infeasible);
        }
    }
    let values: Vec<f64> = (0..n).map(|j| extended[j] - extended[n + j]).collect();
    let objective = problem.objective_value(&values);
    Ok(LpSolution::new(values, objective))
}

/// Comparison after the RHS sign normalization used for column counting
/// (counting is conservative: a flipped `<=` becomes `>=` and vice versa, but
/// both need exactly one slack-type column, and `>=` needs an artificial; we
/// count using the flipped form to match construction).
fn normalized_comparison(c: &LinearConstraint) -> Comparison {
    normalized_comparison_flip(c, c.rhs < 0.0)
}

fn normalized_comparison_flip(c: &LinearConstraint, flip: bool) -> Comparison {
    match (c.comparison, flip) {
        (Comparison::Le, false) | (Comparison::Ge, true) => Comparison::Le,
        (Comparison::Ge, false) | (Comparison::Le, true) => Comparison::Ge,
        (Comparison::Eq, _) => Comparison::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn solve_lp(
        num_vars: usize,
        objective: &[f64],
        constraints: &[(&[f64], Comparison, f64)],
    ) -> Result<LpSolution, LpError> {
        let mut lp = LpProblem::new(num_vars);
        lp.set_objective(objective);
        for (coeffs, cmp, rhs) in constraints {
            lp.add_constraint(coeffs, *cmp, *rhs);
        }
        lp.solve()
    }

    #[test]
    fn textbook_maximization() {
        // maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
        // optimum 36 at (2, 6).  We minimize the negated objective.
        let sol = solve_lp(
            2,
            &[-3.0, -5.0],
            &[
                (&[1.0, 0.0], Comparison::Le, 4.0),
                (&[0.0, 2.0], Comparison::Le, 12.0),
                (&[3.0, 2.0], Comparison::Le, 18.0),
                (&[1.0, 0.0], Comparison::Ge, 0.0),
                (&[0.0, 1.0], Comparison::Ge, 0.0),
            ],
        )
        .unwrap();
        assert!((sol.objective() + 36.0).abs() < 1e-7, "{sol:?}");
        assert!((sol.values()[0] - 2.0).abs() < 1e-7);
        assert!((sol.values()[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraints() {
        // minimize x + y s.t. x + y = 10, x - y = 2 -> unique point (6, 4).
        let sol = solve_lp(
            2,
            &[1.0, 1.0],
            &[
                (&[1.0, 1.0], Comparison::Eq, 10.0),
                (&[1.0, -1.0], Comparison::Eq, 2.0),
            ],
        )
        .unwrap();
        assert!((sol.values()[0] - 6.0).abs() < 1e-7);
        assert!((sol.values()[1] - 4.0).abs() < 1e-7);
        assert!((sol.objective() - 10.0).abs() < 1e-7);
    }

    #[test]
    fn free_variables_can_go_negative() {
        // minimize x s.t. x >= -5 -> optimum -5.
        let sol = solve_lp(1, &[1.0], &[(&[1.0], Comparison::Ge, -5.0)]).unwrap();
        assert!((sol.values()[0] + 5.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_problem_detected() {
        let err = solve_lp(
            1,
            &[1.0],
            &[(&[1.0], Comparison::Ge, 5.0), (&[1.0], Comparison::Le, 1.0)],
        )
        .unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        let err = solve_lp(1, &[-1.0], &[(&[1.0], Comparison::Ge, 0.0)]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
        // No constraints with a nonzero objective is unbounded as well.
        let err = solve_lp(1, &[1.0], &[]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
        // No constraints with a zero objective is trivially optimal at 0.
        let sol = solve_lp(2, &[0.0, 0.0], &[]).unwrap();
        assert_eq!(sol.values(), &[0.0, 0.0]);
    }

    #[test]
    fn tiny_objective_unboundedness_is_still_detected() {
        // minimize -1e-7·x subject to x >= 0: genuinely unbounded even though
        // every reduced cost is far below the absolute noise tolerance — the
        // unboundedness test must scale with the objective magnitude.
        let err = solve_lp(1, &[-1e-7], &[(&[1.0], Comparison::Ge, 0.0)]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // minimize x + y s.t. -x - y <= -4  (i.e. x + y >= 4), x,y >= 0.
        let sol = solve_lp(
            2,
            &[1.0, 1.0],
            &[
                (&[-1.0, -1.0], Comparison::Le, -4.0),
                (&[1.0, 0.0], Comparison::Ge, 0.0),
                (&[0.0, 1.0], Comparison::Ge, 0.0),
            ],
        )
        .unwrap();
        assert!((sol.objective() - 4.0).abs() < 1e-7);
    }

    #[test]
    fn feasibility_problem_with_zero_objective() {
        // Any point with x >= 1, x <= 3 works; check that the returned point
        // is feasible rather than a specific vertex.
        let mut lp = LpProblem::new(1);
        lp.add_constraint(&[1.0], Comparison::Ge, 1.0);
        lp.add_constraint(&[1.0], Comparison::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert!(lp.is_feasible(sol.values(), 1e-7), "{sol:?}");
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; Bland's rule must avoid cycling.
        let sol = solve_lp(
            4,
            &[-0.75, 150.0, -0.02, 6.0],
            &[
                (&[0.25, -60.0, -0.04, 9.0], Comparison::Le, 0.0),
                (&[0.5, -90.0, -0.02, 3.0], Comparison::Le, 0.0),
                (&[0.0, 0.0, 1.0, 0.0], Comparison::Le, 1.0),
                (&[1.0, 0.0, 0.0, 0.0], Comparison::Ge, 0.0),
                (&[0.0, 1.0, 0.0, 0.0], Comparison::Ge, 0.0),
                (&[0.0, 0.0, 1.0, 0.0], Comparison::Ge, 0.0),
                (&[0.0, 0.0, 0.0, 1.0], Comparison::Ge, 0.0),
            ],
        )
        .unwrap();
        assert!((sol.objective() + 0.05).abs() < 1e-6, "{sol:?}");
    }

    #[test]
    fn barrier_style_feasibility_lp() {
        // Miniature of the generator-function LP: find p11, p22, c such that
        // W(x) = p11*x1^2 + p22*x2^2 + c is positive at sample points and
        // decreases between consecutive samples.  Samples from a contracting
        // trajectory x_{k+1} = 0.9 x_k starting at (1, 1).
        let samples = [(1.0, 1.0), (0.9, 0.9), (0.81, 0.81), (0.729, 0.729)];
        let mut lp = LpProblem::new(3);
        lp.set_objective(&[0.0, 0.0, 0.0]);
        // Positivity: W(x_k) >= 0.1
        for &(x1, x2) in &samples {
            lp.add_constraint(&[x1 * x1, x2 * x2, 1.0], Comparison::Ge, 0.1);
        }
        // Decrease: W(x_{k+1}) - W(x_k) <= -0.01
        for w in samples.windows(2) {
            let (a1, a2) = w[0];
            let (b1, b2) = w[1];
            lp.add_constraint(
                &[b1 * b1 - a1 * a1, b2 * b2 - a2 * a2, 0.0],
                Comparison::Le,
                -0.01,
            );
        }
        // Normalization to keep the solution bounded.
        lp.add_constraint(&[1.0, 1.0, 0.0], Comparison::Eq, 2.0);
        lp.add_constraint(&[0.0, 0.0, 1.0], Comparison::Le, 10.0);
        lp.add_constraint(&[0.0, 0.0, 1.0], Comparison::Ge, -10.0);
        let sol = lp.solve().unwrap();
        assert!(lp.is_feasible(sol.values(), 1e-6), "{sol:?}");
        // The found W must indeed decrease along the samples.
        let w = |p: &[f64], x1: f64, x2: f64| p[0] * x1 * x1 + p[1] * x2 * x2 + p[2];
        for win in samples.windows(2) {
            let before = w(sol.values(), win[0].0, win[0].1);
            let after = w(sol.values(), win[1].0, win[1].1);
            assert!(after < before);
        }
    }

    #[test]
    fn large_trace_style_lp_is_not_misreported_as_infeasible() {
        // Regression test: with several hundred positivity/decrease rows the
        // accumulated pivot error used to push the incrementally tracked
        // phase-1 objective past the feasibility threshold and the solver
        // reported `Infeasible` even though a feasible point exists.  The
        // constraint system below is built around the known feasible point
        // w = (0.02, 0.01, 0.13, 0, 0, 0.01, t=0).
        let w = [0.02, 0.01, 0.13, 0.0, 0.0, 0.01, 0.0];
        let eval =
            |coeffs: &[f64]| -> f64 { coeffs.iter().zip(w.iter()).map(|(a, b)| a * b).sum() };
        let mut lp = LpProblem::new(7);
        lp.set_objective(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -1.0]);
        for k in 0..400 {
            let t = k as f64 / 400.0;
            let x = 4.5 * (1.0 - 0.8 * t) * (7.0 * t).cos();
            let y = 1.5 * (1.0 - 0.8 * t) * (7.0 * t).sin();
            let pos = [x * x, x * y, y * y, x, y, 1.0, 0.0];
            // Positivity row, guaranteed loose at the feasible point.
            lp.add_constraint(&pos, Comparison::Ge, eval(&pos) - 0.1);
            // Decrease row toward a contracted point, again loose at w.
            let (nx, ny) = (0.97 * x, 0.96 * y);
            let dec = [
                nx * nx - x * x,
                nx * ny - x * y,
                ny * ny - y * y,
                nx - x,
                ny - y,
                0.0,
                0.01,
            ];
            lp.add_constraint(&dec, Comparison::Le, eval(&dec) + 0.1);
        }
        let norm = [25.0, 7.8, 2.4, 5.0, 1.56, 1.0, 0.0];
        lp.add_constraint(&norm, Comparison::Eq, eval(&norm));
        let solution = lp.solve().expect("the constructed LP is feasible");
        assert!(lp.is_feasible(solution.values(), 1e-5));
    }

    #[test]
    fn maximizing_a_margin_variable_prefers_larger_margins() {
        // minimize -t subject to  x + t <= 5, x >= 1, 0 <= t <= 10.
        // Optimal t = 4 at x = 1.
        let sol = solve_lp(
            2,
            &[0.0, -1.0],
            &[
                (&[1.0, 1.0], Comparison::Le, 5.0),
                (&[1.0, 0.0], Comparison::Ge, 1.0),
                (&[0.0, 1.0], Comparison::Ge, 0.0),
                (&[0.0, 1.0], Comparison::Le, 10.0),
            ],
        )
        .unwrap();
        assert!((sol.values()[1] - 4.0).abs() < 1e-6, "{sol:?}");
    }

    proptest! {
        #[test]
        fn prop_lps_built_around_a_known_point_are_feasible(
            seed_rows in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0), 5..60),
            point in (-1.5f64..1.5, -1.5f64..1.5, -1.5f64..1.5),
        ) {
            // Every row is of the form a·x ⋈ b with b chosen so the fixed
            // point satisfies it with slack; the solver must never report
            // infeasibility, and its solution must satisfy every row.
            let fixed = [point.0, point.1, point.2];
            let mut lp = LpProblem::new(3);
            for (i, (a0, a1, a2)) in seed_rows.iter().enumerate() {
                let row = [*a0, *a1, *a2];
                let value: f64 = row.iter().zip(fixed.iter()).map(|(a, b)| a * b).sum();
                if i % 2 == 0 {
                    lp.add_constraint(&row, Comparison::Ge, value - 0.5);
                } else {
                    lp.add_constraint(&row, Comparison::Le, value + 0.5);
                }
            }
            let solution = lp.solve();
            prop_assert!(solution.is_ok(), "spurious infeasibility: {solution:?}");
            prop_assert!(lp.is_feasible(solution.unwrap().values(), 1e-6));
        }

        #[test]
        fn prop_solution_is_feasible_and_not_worse_than_feasible_points(
            c0 in -2.0f64..2.0, c1 in -2.0f64..2.0,
            b0 in 1.0f64..5.0, b1 in 1.0f64..5.0,
        ) {
            // minimize c·x over the box 0 <= x <= b (encoded with Ge/Le rows).
            let mut lp = LpProblem::new(2);
            lp.set_objective(&[c0, c1]);
            lp.add_constraint(&[1.0, 0.0], Comparison::Ge, 0.0);
            lp.add_constraint(&[0.0, 1.0], Comparison::Ge, 0.0);
            lp.add_constraint(&[1.0, 0.0], Comparison::Le, b0);
            lp.add_constraint(&[0.0, 1.0], Comparison::Le, b1);
            let sol = lp.solve().unwrap();
            prop_assert!(lp.is_feasible(sol.values(), 1e-6));
            // The optimum of a linear objective over a box is attained at a
            // corner; check against all four corners.
            let corners = [(0.0, 0.0), (b0, 0.0), (0.0, b1), (b0, b1)];
            let best = corners
                .iter()
                .map(|&(x, y)| c0 * x + c1 * y)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(sol.objective() <= best + 1e-6);
        }
    }
}
