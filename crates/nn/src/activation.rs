//! Activation functions.

use std::fmt;

use nncps_expr::Expr;

/// Activation function applied componentwise after a layer's affine map.
///
/// The paper trains its controllers with MATLAB's `tansig` (hyperbolic
/// tangent) activation; sigmoid, ReLU, and linear activations are provided for
/// the comparison experiments and for output layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Hyperbolic tangent, MATLAB's `tansig`. The paper's default.
    #[default]
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{-x})`, MATLAB's `logsig`.
    Sigmoid,
    /// Rectified linear unit `max(x, 0)`.
    Relu,
    /// Symmetric saturating linear `min(max(x, -1), 1)`, MATLAB's `satlins`.
    /// Like ReLU it lowers to pure `min`/`max` tape instructions, so it is
    /// fully decidable by region specialization (both clamps resolve once a
    /// box leaves the [-1, 1] band).
    HardTanh,
    /// Identity (MATLAB's `purelin`), typically used on output layers.
    Linear,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::HardTanh => x.clamp(-1.0, 1.0),
            Activation::Linear => x,
        }
    }

    /// Derivative of the activation at `x`.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::HardTanh => {
                if (-1.0..=1.0).contains(&x) {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Linear => 1.0,
        }
    }

    /// Applies the activation symbolically to an expression.
    ///
    /// ReLU is encoded as `max(x, 0)`, which the δ-SAT solver handles through
    /// its interval semantics for `max`.
    pub fn apply_expr(self, x: Expr) -> Expr {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Relu => x.max(Expr::constant(0.0)),
            Activation::HardTanh => x.max(Expr::constant(-1.0)).min(Expr::constant(1.0)),
            Activation::Linear => x,
        }
    }

    /// Output range of the activation, used to sanity-check controller
    /// saturation limits: `(lower, upper)` with infinities where unbounded.
    pub fn range(self) -> (f64, f64) {
        match self {
            Activation::Tanh => (-1.0, 1.0),
            Activation::Sigmoid => (0.0, 1.0),
            Activation::Relu => (0.0, f64::INFINITY),
            Activation::HardTanh => (-1.0, 1.0),
            Activation::Linear => (f64::NEG_INFINITY, f64::INFINITY),
        }
    }

    /// MATLAB-style name of the activation (`tansig`, `logsig`, ...).
    pub fn matlab_name(self) -> &'static str {
        match self {
            Activation::Tanh => "tansig",
            Activation::Sigmoid => "logsig",
            Activation::Relu => "poslin",
            Activation::HardTanh => "satlins",
            Activation::Linear => "purelin",
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.matlab_name())
    }
}

/// Error returned when parsing an unknown activation name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseActivationError(String);

impl fmt::Display for ParseActivationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown activation `{}` (expected tanh/tansig, sigmoid/logsig, relu/poslin, \
             hardtanh/satlins, or linear/purelin)",
            self.0
        )
    }
}

impl std::error::Error for ParseActivationError {}

impl std::str::FromStr for Activation {
    type Err = ParseActivationError;

    /// Parses both the Rust-style and the MATLAB-style names, so scenario
    /// manifests can say either `activation = "tanh"` or `"tansig"`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_nn::Activation;
    ///
    /// assert_eq!("tanh".parse::<Activation>().unwrap(), Activation::Tanh);
    /// assert_eq!("logsig".parse::<Activation>().unwrap(), Activation::Sigmoid);
    /// assert!("softplus".parse::<Activation>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "tanh" | "tansig" => Ok(Activation::Tanh),
            "sigmoid" | "logsig" => Ok(Activation::Sigmoid),
            "relu" | "poslin" => Ok(Activation::Relu),
            "hardtanh" | "satlins" => Ok(Activation::HardTanh),
            "linear" | "purelin" | "identity" => Ok(Activation::Linear),
            other => Err(ParseActivationError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn values_match_reference_formulas() {
        assert!((Activation::Tanh.apply(0.5) - 0.5_f64.tanh()).abs() < 1e-15);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::HardTanh.apply(-2.0), -1.0);
        assert_eq!(Activation::HardTanh.apply(0.25), 0.25);
        assert_eq!(Activation::HardTanh.apply(3.0), 1.0);
        assert_eq!(Activation::Linear.apply(1.25), 1.25);
        assert_eq!(Activation::default(), Activation::Tanh);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in [Activation::Tanh, Activation::Sigmoid, Activation::Linear] {
            for &x in &[-1.2, -0.1, 0.7, 2.0] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                assert!(
                    (act.derivative(x) - fd).abs() < 1e-6,
                    "{act:?} at {x}: {} vs {fd}",
                    act.derivative(x)
                );
            }
        }
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::HardTanh.derivative(0.5), 1.0);
        assert_eq!(Activation::HardTanh.derivative(2.0), 0.0);
        assert_eq!(Activation::HardTanh.derivative(-2.0), 0.0);
    }

    #[test]
    fn symbolic_application_matches_numeric() {
        use nncps_expr::Expr;
        let x = Expr::var(0);
        for act in [
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Relu,
            Activation::HardTanh,
            Activation::Linear,
        ] {
            let e = act.apply_expr(x.clone());
            for &v in &[-2.0, -0.3, 0.0, 0.9, 2.5] {
                assert!(
                    (e.eval(&[v]) - act.apply(v)).abs() < 1e-14,
                    "{act:?} at {v}"
                );
            }
        }
    }

    #[test]
    fn ranges_and_names() {
        assert_eq!(Activation::Tanh.range(), (-1.0, 1.0));
        assert_eq!(Activation::Sigmoid.range(), (0.0, 1.0));
        assert_eq!(Activation::Relu.range().0, 0.0);
        assert_eq!(Activation::HardTanh.range(), (-1.0, 1.0));
        assert_eq!(Activation::Tanh.matlab_name(), "tansig");
        assert_eq!(Activation::HardTanh.matlab_name(), "satlins");
        assert_eq!(format!("{}", Activation::Linear), "purelin");
        assert_eq!(
            "satlins".parse::<Activation>().unwrap(),
            Activation::HardTanh
        );
        assert_eq!(
            "HardTanh".parse::<Activation>().unwrap(),
            Activation::HardTanh
        );
        let err = "softsign".parse::<Activation>().unwrap_err();
        assert!(err.to_string().contains("hardtanh/satlins"), "{err}");
    }

    proptest! {
        #[test]
        fn prop_outputs_stay_in_declared_range(x in -50.0f64..50.0) {
            for act in [
                Activation::Tanh,
                Activation::Sigmoid,
                Activation::Relu,
                Activation::HardTanh,
            ] {
                let (lo, hi) = act.range();
                let y = act.apply(x);
                prop_assert!(y >= lo - 1e-12 && y <= hi + 1e-12);
            }
        }
    }
}
