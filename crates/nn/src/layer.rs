//! A dense affine layer followed by an activation.

use nncps_expr::Expr;
use nncps_linalg::{Matrix, Vector};

use crate::Activation;

/// One fully-connected layer: `output = activation(W · input + b)`.
///
/// Following the paper's notation, a layer with `d_out` neurons and `d_in`
/// inputs is parameterized by a `d_out × d_in` weight matrix `W` and a bias
/// vector `b` of length `d_out`.
///
/// # Examples
///
/// ```
/// use nncps_linalg::{Matrix, Vector};
/// use nncps_nn::{Activation, Layer};
///
/// let layer = Layer::new(
///     Matrix::from_rows(&[&[1.0, -1.0]]),
///     Vector::from_slice(&[0.5]),
///     Activation::Tanh,
/// );
/// let out = layer.forward(&[2.0, 1.0]);
/// assert!((out[0] - 1.5_f64.tanh()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    weights: Matrix,
    biases: Vector,
    activation: Activation,
}

impl Layer {
    /// Creates a layer from its weight matrix, bias vector, and activation.
    ///
    /// # Panics
    ///
    /// Panics if the bias length does not equal the number of weight rows.
    pub fn new(weights: Matrix, biases: Vector, activation: Activation) -> Self {
        assert_eq!(
            weights.rows(),
            biases.len(),
            "bias length must equal the number of neurons (weight rows)"
        );
        Layer {
            weights,
            biases,
            activation,
        }
    }

    /// Creates a layer with all parameters set to zero.
    pub fn zeroed(inputs: usize, neurons: usize, activation: Activation) -> Self {
        Layer::new(
            Matrix::zeros(neurons, inputs),
            Vector::zeros(neurons),
            activation,
        )
    }

    /// Number of inputs accepted by the layer.
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of neurons (outputs) in the layer.
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    pub fn biases(&self) -> &Vector {
        &self.biases
    }

    /// Total number of trainable parameters (`weights + biases`).
    pub fn num_params(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.biases.len()
    }

    /// Evaluates the layer on an input slice.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.input_dim(), "layer input length mismatch");
        let pre = self.weights.mat_vec(&Vector::from_slice(input));
        (0..self.output_dim())
            .map(|i| self.activation.apply(pre[i] + self.biases[i]))
            .collect()
    }

    /// Builds symbolic expressions for the layer outputs given symbolic inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_dim()`.
    pub fn forward_symbolic(&self, inputs: &[Expr]) -> Vec<Expr> {
        assert_eq!(
            inputs.len(),
            self.input_dim(),
            "layer symbolic input length mismatch"
        );
        (0..self.output_dim())
            .map(|i| {
                let mut pre = Expr::constant(self.biases[i]);
                for (j, input) in inputs.iter().enumerate() {
                    let w = self.weights[(i, j)];
                    if w != 0.0 {
                        pre = pre + Expr::constant(w) * input.clone();
                    }
                }
                self.activation.apply_expr(pre)
            })
            .collect()
    }

    /// Appends the layer parameters (weights row-major, then biases) to `out`.
    pub fn flatten_into(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(self.biases.as_slice());
    }

    /// Reads the layer parameters back from a flat slice, returning how many
    /// values were consumed.
    ///
    /// # Panics
    ///
    /// Panics if the slice holds fewer than [`Layer::num_params`] values.
    pub fn unflatten_from(&mut self, params: &[f64]) -> usize {
        let need = self.num_params();
        assert!(
            params.len() >= need,
            "parameter slice too short: need {need}, got {}",
            params.len()
        );
        let (rows, cols) = (self.weights.rows(), self.weights.cols());
        self.weights = Matrix::from_row_major(rows, cols, params[..rows * cols].to_vec());
        self.biases = Vector::from_slice(&params[rows * cols..need]);
        need
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layer() -> Layer {
        Layer::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[-0.5, 0.25]]),
            Vector::from_slice(&[0.1, -0.2]),
            Activation::Tanh,
        )
    }

    #[test]
    fn dimensions_and_parameter_count() {
        let layer = sample_layer();
        assert_eq!(layer.input_dim(), 2);
        assert_eq!(layer.output_dim(), 2);
        assert_eq!(layer.num_params(), 6);
        assert_eq!(layer.activation(), Activation::Tanh);
        assert_eq!(layer.weights().rows(), 2);
        assert_eq!(layer.biases().len(), 2);
        let z = Layer::zeroed(3, 4, Activation::Relu);
        assert_eq!(z.num_params(), 16);
    }

    #[test]
    fn forward_matches_hand_computation() {
        let layer = sample_layer();
        let out = layer.forward(&[1.0, -1.0]);
        assert!((out[0] - (1.0 - 2.0 + 0.1_f64).tanh()).abs() < 1e-12);
        assert!((out[1] - (-0.5 - 0.25 - 0.2_f64).tanh()).abs() < 1e-12);
    }

    #[test]
    fn symbolic_forward_matches_numeric_forward() {
        use nncps_expr::Expr;
        let layer = sample_layer();
        let exprs = layer.forward_symbolic(&[Expr::var(0), Expr::var(1)]);
        for &input in &[[0.3, -0.7], [1.5, 2.0], [0.0, 0.0]] {
            let numeric = layer.forward(&input);
            for (k, e) in exprs.iter().enumerate() {
                assert!((e.eval(&input) - numeric[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let layer = sample_layer();
        let mut flat = Vec::new();
        layer.flatten_into(&mut flat);
        assert_eq!(flat.len(), 6);
        let mut copy = Layer::zeroed(2, 2, Activation::Tanh);
        let used = copy.unflatten_from(&flat);
        assert_eq!(used, 6);
        assert_eq!(copy, layer);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn mismatched_bias_length_panics() {
        let _ = Layer::new(Matrix::zeros(2, 2), Vector::zeros(3), Activation::Tanh);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        let _ = sample_layer().forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "parameter slice too short")]
    fn short_parameter_slice_panics() {
        let mut layer = sample_layer();
        let _ = layer.unflatten_from(&[1.0, 2.0]);
    }
}
