//! Feedforward neural-network controllers.
//!
//! The paper's learning-enabled component is a fully-connected feedforward
//! network with one hidden layer of `tansig` (hyperbolic tangent) neurons that
//! maps the path-following errors `(d_err, θ_err)` to a steering command `u`.
//! This crate provides:
//!
//! * [`Activation`] — the activation functions used by the paper and the
//!   related literature (`tansig`/tanh, logistic sigmoid, ReLU, linear),
//! * [`Layer`] — a dense affine layer followed by an activation,
//! * [`FeedforwardNetwork`] — a stack of layers with forward evaluation,
//!   parameter flattening for the CMA-ES policy search, and **symbolic
//!   export** into [`nncps_expr::Expr`] trees so that the very same network
//!   appears inside the δ-SAT verification queries (the paper's requirement
//!   that the "deployed" dynamics and the SMT queries share one
//!   interpretation).
//!
//! # Examples
//!
//! ```
//! use nncps_nn::{Activation, FeedforwardNetwork};
//!
//! // The paper's architecture: 2 inputs, Nh tanh neurons, 1 linear output.
//! let network = FeedforwardNetwork::builder(2)
//!     .layer(10, Activation::Tanh)
//!     .layer(1, Activation::Tanh)
//!     .build_zeroed();
//! assert_eq!(network.num_params(), 4 * 10 + 1);
//! let u = network.forward(&[0.1, -0.2]);
//! assert_eq!(u.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod layer;
mod network;

pub use activation::{Activation, ParseActivationError};
pub use layer::Layer;
pub use network::{network_from_weights, FeedforwardNetwork, NetworkBuilder};
