//! Multi-layer feedforward networks.

use std::fmt;

use nncps_expr::{Expr, Tape};
use nncps_linalg::{Matrix, Vector};
use rand::Rng;

use crate::{Activation, Layer};

/// A fully-connected feedforward neural network.
///
/// The network is the paper's learning-enabled component: a stateless map
/// `u = h(y)` from controller inputs to actuation commands.  Besides numeric
/// evaluation, the network can export itself as symbolic expressions so the
/// exact same weights and activation functions appear in the SMT verification
/// queries — the paper's assumption (Section 3) that the deployed dynamics and
/// the solver share one interpretation.
///
/// # Examples
///
/// ```
/// use nncps_nn::{Activation, FeedforwardNetwork};
/// use nncps_expr::Expr;
///
/// let network = FeedforwardNetwork::builder(2)
///     .layer(4, Activation::Tanh)
///     .layer(1, Activation::Tanh)
///     .build_zeroed();
///
/// // Numeric and symbolic evaluation agree.
/// let u = network.forward(&[0.3, -0.1])[0];
/// let sym = network.forward_symbolic(&[Expr::var(0), Expr::var(1)]);
/// assert!((sym[0].eval(&[0.3, -0.1]) - u).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeedforwardNetwork {
    input_dim: usize,
    layers: Vec<Layer>,
}

impl FeedforwardNetwork {
    /// Starts building a network that accepts `input_dim` inputs.
    pub fn builder(input_dim: usize) -> NetworkBuilder {
        NetworkBuilder {
            input_dim,
            layers: Vec::new(),
        }
    }

    /// Creates the paper's case-study architecture: `2 → hidden_neurons → 1`
    /// with `tansig` activations everywhere, all parameters zero.
    ///
    /// The parameter count is `4·Nh + 1` as stated in Section 4.2 of the
    /// paper.
    pub fn paper_architecture(hidden_neurons: usize) -> Self {
        FeedforwardNetwork::builder(2)
            .layer(hidden_neurons, Activation::Tanh)
            .layer(1, Activation::Tanh)
            .build_zeroed()
    }

    /// Creates a network directly from layers.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer dimensions do not match or no layers are
    /// given.
    pub fn from_layers(input_dim: usize, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        let mut expected = input_dim;
        for (i, layer) in layers.iter().enumerate() {
            assert_eq!(
                layer.input_dim(),
                expected,
                "layer {i} expects {} inputs but receives {expected}",
                layer.input_dim()
            );
            expected = layer.output_dim();
        }
        FeedforwardNetwork { input_dim, layers }
    }

    /// Number of network inputs.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of network outputs.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(self.input_dim, Layer::output_dim)
    }

    /// The layers of the network in evaluation order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of neurons in each hidden layer (all layers except the last).
    pub fn hidden_sizes(&self) -> Vec<usize> {
        self.layers[..self.layers.len().saturating_sub(1)]
            .iter()
            .map(Layer::output_dim)
            .collect()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Evaluates the network on an input slice.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.input_dim, "network input length mismatch");
        let mut activation = input.to_vec();
        for layer in &self.layers {
            activation = layer.forward(&activation);
        }
        activation
    }

    /// Builds symbolic expressions for the network outputs in terms of the
    /// given symbolic inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_dim()`.
    pub fn forward_symbolic(&self, inputs: &[Expr]) -> Vec<Expr> {
        assert_eq!(
            inputs.len(),
            self.input_dim,
            "network symbolic input length mismatch"
        );
        let mut exprs = inputs.to_vec();
        for layer in &self.layers {
            exprs = layer.forward_symbolic(&exprs);
        }
        exprs
    }

    /// Compiles the symbolic network outputs into one flat evaluation
    /// [`Tape`].
    ///
    /// The symbolic export shares each neuron's pre-activation between every
    /// output (and, after differentiation, between the network and its
    /// gradient), so the tape's common-subexpression elimination evaluates
    /// each pre-activation exactly once — this is what keeps the δ-SAT
    /// queries over wide controllers tractable.  Evaluation of the tape is
    /// bit-identical to evaluating the exported expressions.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_expr::Expr;
    /// use nncps_nn::FeedforwardNetwork;
    ///
    /// let network = FeedforwardNetwork::paper_architecture(8);
    /// let tape = network.compile_symbolic(&[Expr::var(0), Expr::var(1)]);
    /// assert_eq!(tape.num_roots(), 1);
    /// assert_eq!(
    ///     tape.eval(&[0.3, -0.1]).to_bits(),
    ///     network.forward_symbolic(&[Expr::var(0), Expr::var(1)])[0]
    ///         .eval(&[0.3, -0.1])
    ///         .to_bits(),
    /// );
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_dim()`.
    pub fn compile_symbolic(&self, inputs: &[Expr]) -> Tape {
        Tape::compile_many(&self.forward_symbolic(inputs))
    }

    /// Compiles the network outputs **and** their partial derivatives with
    /// respect to every input into one shared [`Tape`].
    ///
    /// Root layout: the first [`FeedforwardNetwork::output_dim`] roots are
    /// the outputs, followed by `∂output_o/∂input_i` in row-major order
    /// (`o * inputs.len() + i`).  Because the chain-rule terms of every
    /// derivative reference the same hidden pre-activations as the outputs,
    /// hash-consing CSE computes each neuron once for the whole bundle, at
    /// a fraction of the unrolled tree size.
    ///
    /// This is the network-level counterpart of the per-clause gradient
    /// bundles the δ-SAT solver compiles internally for its
    /// derivative-guided cuts (which differentiate whole constraint
    /// expressions, not networks): use it when you need controller
    /// sensitivities directly — Jacobian-based analyses, linearization, or
    /// hand-built queries over `u` and `∇u` — with the same shared-CSE
    /// economics.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_expr::Expr;
    /// use nncps_nn::FeedforwardNetwork;
    ///
    /// let network = FeedforwardNetwork::paper_architecture(8);
    /// let inputs = [Expr::var(0), Expr::var(1)];
    /// let bundle = network.compile_gradient_bundle(&inputs);
    /// assert_eq!(bundle.num_roots(), 1 + 2); // output + two partials
    ///
    /// // The bundled gradient agrees with standalone differentiation.
    /// let u = network.forward_symbolic(&inputs)[0].clone();
    /// let mut slots = Vec::new();
    /// bundle.eval_scalar_into(&[0.3, -0.1], &mut slots);
    /// assert_eq!(
    ///     slots[bundle.root_slot(1)].to_bits(),
    ///     u.differentiate(0).simplified().eval(&[0.3, -0.1]).to_bits(),
    /// );
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_dim()`.
    pub fn compile_gradient_bundle(&self, inputs: &[Expr]) -> Tape {
        let outputs = self.forward_symbolic(inputs);
        let mut roots = Vec::with_capacity(outputs.len() * (1 + inputs.len()));
        roots.extend(outputs.iter().cloned());
        for output in &outputs {
            for var in 0..inputs.len() {
                roots.push(output.differentiate(var).simplified());
            }
        }
        Tape::compile_many(&roots)
    }

    /// Flattens all parameters into a single vector (layer by layer, weights
    /// row-major then biases), the format consumed by the CMA-ES policy
    /// search.
    pub fn flatten_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            layer.flatten_into(&mut out);
        }
        out
    }

    /// Loads parameters from a flat vector produced by
    /// [`FeedforwardNetwork::flatten_params`] (or by the optimizer).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from [`FeedforwardNetwork::num_params`].
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.num_params(),
            "parameter vector length mismatch"
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.unflatten_from(&params[offset..]);
        }
    }

    /// Returns a copy of the network using the given flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from [`FeedforwardNetwork::num_params`].
    pub fn with_params(&self, params: &[f64]) -> Self {
        let mut copy = self.clone();
        copy.set_params(params);
        copy
    }

    /// Randomizes all parameters uniformly in `[-scale, scale]`.
    pub fn randomize<R: Rng + ?Sized>(&mut self, rng: &mut R, scale: f64) {
        let params: Vec<f64> = (0..self.num_params())
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        self.set_params(&params);
    }

    /// Returns a copy with every parameter `p` perturbed multiplicatively to
    /// `p · (1 + relative_scale · u)`, `u` drawn uniformly from `[-1, 1]` by
    /// a deterministic ChaCha8 RNG seeded with `seed` (the same
    /// version-stable generator the scenario samplers use — `StdRng`'s
    /// stream is explicitly unstable across `rand` releases).
    ///
    /// The scenario sweep engine uses this for its *NN weight perturbation*
    /// parameter axis: the perturbation is a pure function of `(network,
    /// relative_scale, seed)`, so family members regenerate bit-identical
    /// controllers on every run, and a zero scale returns the network
    /// bit-unchanged (`p · (1 + 0) = p`).
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_nn::FeedforwardNetwork;
    ///
    /// let net = FeedforwardNetwork::paper_architecture(4);
    /// let twin = net.perturbed(0.0, 7);
    /// assert_eq!(net.flatten_params(), twin.flatten_params());
    /// let shaken = net.perturbed(0.05, 7);
    /// assert_eq!(shaken.flatten_params(), net.perturbed(0.05, 7).flatten_params());
    /// ```
    pub fn perturbed(&self, relative_scale: f64, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let params: Vec<f64> = self
            .flatten_params()
            .into_iter()
            .map(|p| p * (1.0 + relative_scale * rng.gen_range(-1.0..=1.0)))
            .collect();
        self.with_params(&params)
    }
}

impl fmt::Display for FeedforwardNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.input_dim)?;
        for layer in &self.layers {
            write!(f, " -> {}[{}]", layer.output_dim(), layer.activation())?;
        }
        Ok(())
    }
}

/// Builder for [`FeedforwardNetwork`], collecting layer sizes and activations.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    input_dim: usize,
    layers: Vec<(usize, Activation)>,
}

impl NetworkBuilder {
    /// Appends a layer with `neurons` outputs and the given activation.
    pub fn layer(mut self, neurons: usize, activation: Activation) -> Self {
        self.layers.push((neurons, activation));
        self
    }

    /// Builds the network with all parameters set to zero.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added.
    pub fn build_zeroed(self) -> FeedforwardNetwork {
        assert!(!self.layers.is_empty(), "network needs at least one layer");
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut inputs = self.input_dim;
        for (neurons, activation) in &self.layers {
            layers.push(Layer::zeroed(inputs, *neurons, *activation));
            inputs = *neurons;
        }
        FeedforwardNetwork::from_layers(self.input_dim, layers)
    }

    /// Builds the network with parameters drawn uniformly from
    /// `[-scale, scale]`, the usual starting point for the policy search.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added.
    pub fn build_random<R: Rng + ?Sized>(self, rng: &mut R, scale: f64) -> FeedforwardNetwork {
        let mut network = self.build_zeroed();
        network.randomize(rng, scale);
        network
    }
}

/// Builds a network with explicitly supplied weight/bias matrices, primarily
/// useful in tests and examples that need a hand-crafted controller.
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn network_from_weights(
    input_dim: usize,
    weights_and_biases: Vec<(Matrix, Vector, Activation)>,
) -> FeedforwardNetwork {
    let layers = weights_and_biases
        .into_iter()
        .map(|(w, b, a)| Layer::new(w, b, a))
        .collect();
    FeedforwardNetwork::from_layers(input_dim, layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_network() -> FeedforwardNetwork {
        // 2 -> 2 tanh -> 1 linear with hand-picked weights.
        network_from_weights(
            2,
            vec![
                (
                    Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.25]]),
                    Vector::from_slice(&[0.1, -0.3]),
                    Activation::Tanh,
                ),
                (
                    Matrix::from_rows(&[&[2.0, -0.5]]),
                    Vector::from_slice(&[0.05]),
                    Activation::Linear,
                ),
            ],
        )
    }

    #[test]
    fn paper_architecture_parameter_count() {
        // The paper states the total parameter count is 4*Nh + 1.
        for nh in [10usize, 20, 100, 1000] {
            let n = FeedforwardNetwork::paper_architecture(nh);
            assert_eq!(n.num_params(), 4 * nh + 1);
            assert_eq!(n.input_dim(), 2);
            assert_eq!(n.output_dim(), 1);
            assert_eq!(n.hidden_sizes(), vec![nh]);
        }
    }

    #[test]
    fn forward_matches_manual_computation() {
        let n = tiny_network();
        let input = [0.4, -0.2];
        let h1 = (0.5 * 0.4 + -1.0 * -0.2 + 0.1_f64).tanh();
        let h2 = (1.5 * 0.4 + 0.25 * -0.2 - 0.3_f64).tanh();
        let expected = 2.0 * h1 - 0.5 * h2 + 0.05;
        let out = n.forward(&input);
        assert_eq!(out.len(), 1);
        assert!((out[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn symbolic_export_agrees_with_forward() {
        use nncps_expr::Expr;
        let n = tiny_network();
        let sym = n.forward_symbolic(&[Expr::var(0), Expr::var(1)]);
        assert_eq!(sym.len(), 1);
        for &input in &[[0.0, 0.0], [0.7, -0.9], [-1.2, 0.3], [2.0, 2.0]] {
            let numeric = n.forward(&input)[0];
            let symbolic = sym[0].eval(&input);
            assert!((numeric - symbolic).abs() < 1e-12, "at {input:?}");
        }
    }

    #[test]
    fn compiled_symbolic_export_shares_pre_activations() {
        use nncps_expr::{Expr, Tape};
        let mut rng = StdRng::seed_from_u64(11);
        let n = FeedforwardNetwork::builder(2)
            .layer(6, Activation::Tanh)
            .layer(1, Activation::Tanh)
            .build_random(&mut rng, 0.8);
        let inputs = [Expr::var(0), Expr::var(1)];
        let u = n.forward_symbolic(&inputs)[0].clone();

        // A Lie-derivative-shaped bundle: the output and both its partial
        // derivatives reference every hidden pre-activation.  CSE must
        // collapse the shared neurons so the tape is far smaller than the
        // unrolled trees.
        let bundle = [
            u.clone(),
            u.differentiate(0).simplified(),
            u.differentiate(1).simplified(),
        ];
        let tape = Tape::compile_many(&bundle);
        let unrolled: usize = bundle.iter().map(Expr::node_count).sum();
        assert!(
            tape.num_slots() * 2 < unrolled,
            "expected >2x CSE compression, got {} slots vs {} tree nodes",
            tape.num_slots(),
            unrolled
        );

        // And the single-output compilation helper agrees bit-for-bit with
        // the tree at probe points.
        let compiled = n.compile_symbolic(&inputs);
        for input in [[0.0, 0.0], [0.7, -0.9], [-1.2, 0.3]] {
            assert_eq!(compiled.eval(&input).to_bits(), u.eval(&input).to_bits());
        }
    }

    #[test]
    fn parameter_roundtrip_and_with_params() {
        let n = tiny_network();
        let flat = n.flatten_params();
        assert_eq!(flat.len(), n.num_params());
        let mut rebuilt = FeedforwardNetwork::builder(2)
            .layer(2, Activation::Tanh)
            .layer(1, Activation::Linear)
            .build_zeroed();
        rebuilt.set_params(&flat);
        assert_eq!(rebuilt, n);
        let perturbed: Vec<f64> = flat.iter().map(|p| p + 1.0).collect();
        let other = n.with_params(&perturbed);
        assert_ne!(other, n);
        assert_eq!(other.flatten_params(), perturbed);
    }

    #[test]
    fn random_initialization_is_reproducible_and_bounded() {
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let a = FeedforwardNetwork::builder(2)
            .layer(5, Activation::Tanh)
            .layer(1, Activation::Tanh)
            .build_random(&mut rng_a, 0.5);
        let b = FeedforwardNetwork::builder(2)
            .layer(5, Activation::Tanh)
            .layer(1, Activation::Tanh)
            .build_random(&mut rng_b, 0.5);
        assert_eq!(a, b);
        assert!(a.flatten_params().iter().all(|p| p.abs() <= 0.5));
    }

    #[test]
    fn display_shows_architecture() {
        let n = FeedforwardNetwork::paper_architecture(10);
        assert_eq!(format!("{n}"), "2 -> 10[tansig] -> 1[tansig]");
    }

    #[test]
    fn tanh_output_layer_saturates_steering() {
        // The case-study controller uses tanh on the output, so |u| <= 1.
        let mut rng = StdRng::seed_from_u64(3);
        let n = FeedforwardNetwork::builder(2)
            .layer(8, Activation::Tanh)
            .layer(1, Activation::Tanh)
            .build_random(&mut rng, 3.0);
        for &input in &[[5.0, 5.0], [-10.0, 2.0], [0.0, 0.0]] {
            assert!(n.forward(&input)[0].abs() <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_builder_panics() {
        let _ = FeedforwardNetwork::builder(2).build_zeroed();
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn mismatched_layer_dimensions_panic() {
        let _ = FeedforwardNetwork::from_layers(
            2,
            vec![
                Layer::zeroed(2, 3, Activation::Tanh),
                Layer::zeroed(4, 1, Activation::Tanh),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_parameter_length_panics() {
        let mut n = FeedforwardNetwork::paper_architecture(4);
        n.set_params(&[0.0; 3]);
    }
}
