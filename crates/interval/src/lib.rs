//! Interval arithmetic for the δ-satisfiability solver.
//!
//! The verification queries issued by the barrier-certificate pipeline are
//! decided by an interval constraint propagation (ICP) solver in the
//! `nncps-deltasat` crate.  That solver needs a sound interval arithmetic:
//! every operation on [`Interval`] values must return an interval that
//! *encloses* the set of all possible real results, so that pruning a box can
//! never discard a true solution.
//!
//! Enclosure is achieved by outward rounding: after each floating-point
//! operation the lower bound is nudged down by one unit in the last place and
//! the upper bound is nudged up by one ulp.  This is slightly conservative
//! compared to true directed rounding but it is portable, branch-free, and
//! more than tight enough for δ-precision on the order of `1e-6` used by the
//! paper.
//!
//! The crate provides:
//!
//! * [`Interval`] — a closed interval `[lo, hi]` with arithmetic
//!   (`+`, `-`, `*`, `/`), powers, and the transcendental functions needed by
//!   the case study (`sin`, `cos`, `tan`, `exp`, `ln`, `tanh`, `sigmoid`,
//!   `sqrt`, `abs`, `min`, `max`),
//! * [`IntervalBox`] — an axis-aligned box (vector of intervals) with the
//!   bisection and measurement utilities used by branch-and-prune search.
//!
//! # Examples
//!
//! ```
//! use nncps_interval::Interval;
//!
//! let x = Interval::new(0.0, 1.0);
//! let y = Interval::new(-2.0, 3.0);
//! let sum = x + y;
//! assert!(sum.contains(2.5));
//! assert!(sum.lo() <= -2.0 && sum.hi() >= 4.0);
//!
//! // tanh is monotone, so the enclosure is tight:
//! let t = Interval::new(-1.0, 1.0).tanh();
//! assert!(t.lo() <= -0.7615 && t.hi() >= 0.7615);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod interval_box;

pub use interval::Interval;
pub use interval_box::IntervalBox;
