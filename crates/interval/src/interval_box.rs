//! Axis-aligned interval boxes used by the branch-and-prune search.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::Interval;

/// An axis-aligned box: a vector of [`Interval`]s, one per dimension.
///
/// Boxes are the unit of work in the δ-SAT branch-and-prune loop: the solver
/// repeatedly contracts a box with the problem constraints, measures its
/// width, and bisects it along the widest dimension until either every
/// constraint is δ-satisfied or the box is proven empty.
///
/// # Examples
///
/// ```
/// use nncps_interval::{Interval, IntervalBox};
///
/// let b = IntervalBox::new(vec![Interval::new(0.0, 1.0), Interval::new(-1.0, 1.0)]);
/// assert_eq!(b.dim(), 2);
/// assert_eq!(b.max_width(), 2.0);
/// let (left, right) = b.bisect_widest();
/// assert!(left.max_width() <= 1.0 + 1e-12);
/// assert!(right.max_width() <= 1.0 + 1e-12);
/// ```
#[derive(Debug, PartialEq, Default)]
pub struct IntervalBox {
    dims: Vec<Interval>,
}

impl Clone for IntervalBox {
    fn clone(&self) -> Self {
        IntervalBox {
            dims: self.dims.clone(),
        }
    }

    /// Clones into existing storage, reusing the destination's capacity —
    /// this is what keeps the branch-and-prune box pool allocation-free.
    fn clone_from(&mut self, source: &Self) {
        self.dims.clone_from(&source.dims);
    }
}

impl IntervalBox {
    /// Creates a box from per-dimension intervals.
    pub fn new(dims: Vec<Interval>) -> Self {
        IntervalBox { dims }
    }

    /// Creates a box from `(lo, hi)` bound pairs.
    pub fn from_bounds(bounds: &[(f64, f64)]) -> Self {
        IntervalBox {
            dims: bounds
                .iter()
                .map(|&(lo, hi)| Interval::new(lo, hi))
                .collect(),
        }
    }

    /// Creates the degenerate box containing exactly the given point.
    pub fn from_point(point: &[f64]) -> Self {
        IntervalBox {
            dims: point.iter().map(|&x| Interval::singleton(x)).collect(),
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Returns `true` if the box has no dimensions.
    pub fn is_zero_dimensional(&self) -> bool {
        self.dims.is_empty()
    }

    /// Returns `true` if any dimension is the empty interval.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Interval::is_empty)
    }

    /// The per-dimension intervals as a slice.
    pub fn intervals(&self) -> &[Interval] {
        &self.dims
    }

    /// Iterator over the per-dimension intervals.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.dims.iter()
    }

    /// Largest dimension width (the measure driven to `δ` by the solver).
    pub fn max_width(&self) -> f64 {
        self.dims.iter().map(Interval::width).fold(0.0, f64::max)
    }

    /// Index of the widest dimension (ties go to the lowest index), or `None`
    /// for a zero-dimensional box.
    pub fn widest_dimension(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, iv) in self.dims.iter().enumerate() {
            let w = iv.width();
            match best {
                Some((_, bw)) if bw >= w => {}
                _ => best = Some((i, w)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Volume (product of widths). Returns `0` if any dimension is empty.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.dims.iter().map(Interval::width).product()
    }

    /// Center point of the box.
    pub fn midpoint(&self) -> Vec<f64> {
        self.dims.iter().map(Interval::midpoint).collect()
    }

    /// Returns `true` if the point lies inside the box.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn contains_point(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        self.dims
            .iter()
            .zip(point.iter())
            .all(|(iv, &x)| iv.contains(x))
    }

    /// Returns `true` if `other` is contained in `self` dimension-wise.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn contains_box(&self, other: &IntervalBox) -> bool {
        assert_eq!(self.dim(), other.dim(), "box dimension mismatch");
        self.dims
            .iter()
            .zip(other.dims.iter())
            .all(|(a, b)| a.contains_interval(b))
    }

    /// Dimension-wise intersection.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn intersect(&self, other: &IntervalBox) -> IntervalBox {
        assert_eq!(self.dim(), other.dim(), "box dimension mismatch");
        IntervalBox {
            dims: self
                .dims
                .iter()
                .zip(other.dims.iter())
                .map(|(a, b)| a.intersect(b))
                .collect(),
        }
    }

    /// Dimension-wise hull.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hull(&self, other: &IntervalBox) -> IntervalBox {
        assert_eq!(self.dim(), other.dim(), "box dimension mismatch");
        IntervalBox {
            dims: self
                .dims
                .iter()
                .zip(other.dims.iter())
                .map(|(a, b)| a.hull(b))
                .collect(),
        }
    }

    /// Splits the box into two halves along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn bisect_dimension(&self, dim: usize) -> (IntervalBox, IntervalBox) {
        assert!(dim < self.dim(), "bisect dimension out of range");
        let (lo_half, hi_half) = self.dims[dim].bisect();
        let mut left = self.clone();
        let mut right = self.clone();
        left.dims[dim] = lo_half;
        right.dims[dim] = hi_half;
        (left, right)
    }

    /// Splits the box along its widest dimension.
    ///
    /// # Panics
    ///
    /// Panics if the box is zero-dimensional.
    pub fn bisect_widest(&self) -> (IntervalBox, IntervalBox) {
        let dim = self
            .widest_dimension()
            .expect("cannot bisect a zero-dimensional box");
        self.bisect_dimension(dim)
    }

    /// Splits the box along its widest dimension **in place**: `self` becomes
    /// the lower half and `right` is overwritten with the upper half, reusing
    /// `right`'s existing storage.
    ///
    /// The halves are identical to those of [`IntervalBox::bisect_widest`],
    /// but no allocation occurs when `right` already has capacity for
    /// [`IntervalBox::dim`] intervals — the δ-SAT branch-and-prune loop
    /// recycles pruned boxes through this method to keep its steady state
    /// allocation-free.
    ///
    /// # Examples
    ///
    /// ```
    /// use nncps_interval::IntervalBox;
    ///
    /// let mut left = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 4.0)]);
    /// let (want_left, want_right) = left.bisect_widest();
    /// let mut right = IntervalBox::default();
    /// left.split_widest_into(&mut right);
    /// assert_eq!(left, want_left);
    /// assert_eq!(right, want_right);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the box is zero-dimensional.
    pub fn split_widest_into(&mut self, right: &mut IntervalBox) {
        let dim = self
            .widest_dimension()
            .expect("cannot bisect a zero-dimensional box");
        right.dims.clone_from(&self.dims);
        let (lo_half, hi_half) = self.dims[dim].bisect();
        self.dims[dim] = lo_half;
        right.dims[dim] = hi_half;
    }

    /// Returns the corner points (vertices) of the box.
    ///
    /// The number of corners is `2^dim`; this is intended for low-dimensional
    /// boxes such as the 2-D initial set of the case study.
    ///
    /// # Panics
    ///
    /// Panics if the dimension exceeds 20 (to avoid accidental exponential blowups).
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let n = self.dim();
        assert!(n <= 20, "corner enumeration limited to 20 dimensions");
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0..(1usize << n) {
            let corner: Vec<f64> = (0..n)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        self.dims[i].hi()
                    } else {
                        self.dims[i].lo()
                    }
                })
                .collect();
            out.push(corner);
        }
        out
    }

    /// Uniformly samples a point in the box using the provided unit samples.
    ///
    /// `unit` must contain one value in `[0, 1]` per dimension; this keeps the
    /// crate free of a direct RNG dependency while letting callers plug in any
    /// random source.
    ///
    /// # Panics
    ///
    /// Panics if `unit.len() != self.dim()`.
    pub fn lerp_point(&self, unit: &[f64]) -> Vec<f64> {
        assert_eq!(unit.len(), self.dim(), "unit sample dimension mismatch");
        self.dims
            .iter()
            .zip(unit.iter())
            .map(|(iv, &t)| iv.lo() + t.clamp(0.0, 1.0) * iv.width())
            .collect()
    }
}

impl fmt::Display for IntervalBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

impl Index<usize> for IntervalBox {
    type Output = Interval;
    fn index(&self, index: usize) -> &Interval {
        &self.dims[index]
    }
}

impl IndexMut<usize> for IntervalBox {
    fn index_mut(&mut self, index: usize) -> &mut Interval {
        &mut self.dims[index]
    }
}

impl FromIterator<Interval> for IntervalBox {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalBox {
            dims: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for IntervalBox {
    type Item = Interval;
    type IntoIter = std::vec::IntoIter<Interval>;
    fn into_iter(self) -> Self::IntoIter {
        self.dims.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_box() -> IntervalBox {
        IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 2.0), (-1.0, 1.0)])
    }

    #[test]
    fn construction_and_measures() {
        let b = unit_box();
        assert_eq!(b.dim(), 3);
        assert!(!b.is_empty());
        assert!(!b.is_zero_dimensional());
        assert_eq!(b.max_width(), 2.0);
        assert_eq!(b.volume(), 4.0);
        assert_eq!(b.widest_dimension(), Some(1));
        assert_eq!(b.midpoint(), vec![0.5, 1.0, 0.0]);
        let p = IntervalBox::from_point(&[1.0, 2.0]);
        assert_eq!(p.max_width(), 0.0);
        assert!(p.contains_point(&[1.0, 2.0]));
    }

    #[test]
    fn emptiness_detection() {
        let mut b = unit_box();
        b[1] = Interval::EMPTY;
        assert!(b.is_empty());
        assert_eq!(b.volume(), 0.0);
        assert_eq!(IntervalBox::default().dim(), 0);
    }

    #[test]
    fn containment_and_intersection() {
        let outer = IntervalBox::from_bounds(&[(0.0, 10.0), (0.0, 10.0)]);
        let inner = IntervalBox::from_bounds(&[(1.0, 2.0), (3.0, 4.0)]);
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        assert!(outer.contains_point(&[5.0, 5.0]));
        assert!(!outer.contains_point(&[11.0, 5.0]));
        let inter = outer.intersect(&inner);
        assert_eq!(inter, inner);
        let hull = inner.hull(&IntervalBox::from_bounds(&[(5.0, 6.0), (0.0, 1.0)]));
        assert!(hull.contains_box(&inner));
    }

    #[test]
    fn bisection() {
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 4.0)]);
        let (l, r) = b.bisect_widest();
        assert_eq!(l[1], Interval::new(0.0, 2.0));
        assert_eq!(r[1], Interval::new(2.0, 4.0));
        assert_eq!(l[0], b[0]);
        let (l0, r0) = b.bisect_dimension(0);
        assert_eq!(l0[0], Interval::new(0.0, 0.5));
        assert_eq!(r0[0], Interval::new(0.5, 1.0));
    }

    #[test]
    fn in_place_split_matches_bisect_widest() {
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 4.0), (-2.0, -1.0)]);
        let (want_l, want_r) = b.bisect_widest();
        let mut left = b.clone();
        // A stale box of the wrong dimension must be fully overwritten.
        let mut right = IntervalBox::from_bounds(&[(9.0, 10.0)]);
        left.split_widest_into(&mut right);
        assert_eq!(left, want_l);
        assert_eq!(right, want_r);
        // clone_from reuses storage and copies values exactly.
        let mut reused = IntervalBox::from_bounds(&[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]);
        reused.clone_from(&b);
        assert_eq!(reused, b);
    }

    #[test]
    fn corners_enumeration() {
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (2.0, 3.0)]);
        let corners = b.corners();
        assert_eq!(corners.len(), 4);
        assert!(corners.contains(&vec![0.0, 2.0]));
        assert!(corners.contains(&vec![1.0, 3.0]));
        assert!(corners.contains(&vec![0.0, 3.0]));
        assert!(corners.contains(&vec![1.0, 2.0]));
    }

    #[test]
    fn lerp_point_stays_inside() {
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (-2.0, 2.0)]);
        assert_eq!(b.lerp_point(&[0.0, 0.0]), vec![0.0, -2.0]);
        assert_eq!(b.lerp_point(&[1.0, 1.0]), vec![1.0, 2.0]);
        assert!(b.contains_point(&b.lerp_point(&[0.3, 0.7])));
        // Out-of-range samples are clamped.
        assert!(b.contains_point(&b.lerp_point(&[-1.0, 2.0])));
    }

    #[test]
    fn display_indexing_iteration() {
        let mut b = IntervalBox::from_bounds(&[(0.0, 1.0)]);
        b[0] = Interval::new(2.0, 3.0);
        assert_eq!(b[0].lo(), 2.0);
        let s = format!("{b}");
        assert!(s.contains("[2, 3]"));
        let collected: IntervalBox = b.iter().copied().collect();
        assert_eq!(collected, b);
        let items: Vec<Interval> = b.clone().into_iter().collect();
        assert_eq!(items.len(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_intersection_panics() {
        let a = IntervalBox::from_bounds(&[(0.0, 1.0)]);
        let b = IntervalBox::from_bounds(&[(0.0, 1.0), (0.0, 1.0)]);
        let _ = a.intersect(&b);
    }

    proptest! {
        #[test]
        fn prop_bisection_preserves_points(
            bounds in proptest::collection::vec((-10.0f64..0.0, 0.0f64..10.0), 1..5),
            t in proptest::collection::vec(0.0f64..1.0, 5),
        ) {
            let b = IntervalBox::from_bounds(&bounds);
            let point = b.lerp_point(&t[..b.dim()]);
            let (l, r) = b.bisect_widest();
            prop_assert!(l.contains_point(&point) || r.contains_point(&point));
        }

        #[test]
        fn prop_intersection_contained_in_both(
            bounds in proptest::collection::vec((-10.0f64..0.0, 0.0f64..10.0), 1..5),
        ) {
            let a = IntervalBox::from_bounds(&bounds);
            let shifted: Vec<(f64, f64)> = bounds.iter().map(|&(lo, hi)| (lo + 1.0, hi + 1.0)).collect();
            let b = IntervalBox::from_bounds(&shifted);
            let inter = a.intersect(&b);
            if !inter.is_empty() {
                prop_assert!(a.contains_box(&inter));
                prop_assert!(b.contains_box(&inter));
            }
        }

        #[test]
        fn prop_volume_halves_under_bisection(
            bounds in proptest::collection::vec((-10.0f64..-0.5, 0.5f64..10.0), 1..5),
        ) {
            let b = IntervalBox::from_bounds(&bounds);
            let (l, r) = b.bisect_widest();
            prop_assert!((l.volume() + r.volume() - b.volume()).abs() < 1e-6 * b.volume().max(1.0));
        }
    }
}
