//! The scalar [`Interval`] type and its arithmetic.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` of real numbers, represented with `f64` bounds.
///
/// All operations are *outward rounded*: the result interval is guaranteed to
/// enclose every real value that could be obtained by applying the operation
/// to real numbers drawn from the operands.  The empty interval is represented
/// explicitly and is propagated by all operations.
///
/// # Examples
///
/// ```
/// use nncps_interval::Interval;
///
/// let x = Interval::new(1.0, 2.0);
/// assert!(x.contains(1.5));
/// assert!((x * x).contains(2.25));
/// assert!(x.sin().contains(1.5_f64.sin()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// Rounds a computed *lower* endpoint outward: one ulp down for finite
/// values, and — crucially — back to `f64::MAX` when the underlying
/// computation overflowed to `+∞`.  The true value of an overflowed lower
/// endpoint is a finite real above `MAX`, so `MAX` is the tightest sound
/// bound; leaving `+∞` would claim the result exceeds every real, turning
/// sound enclosures (for example `exp` of a large but finite range) into
/// `[+∞, +∞]` and making the HC4 backward pass empty out satisfiable boxes.
#[inline]
fn down(x: f64) -> f64 {
    if x == f64::INFINITY {
        f64::MAX
    } else if x.is_finite() {
        x.next_down()
    } else {
        x
    }
}

/// Rounds a computed *upper* endpoint outward: one ulp up for finite
/// values, and back to `f64::MIN` when the computation overflowed to `−∞`
/// (mirror image of [`down`]).
#[inline]
fn up(x: f64) -> f64 {
    if x == f64::NEG_INFINITY {
        f64::MIN
    } else if x.is_finite() {
        x.next_up()
    } else {
        x
    }
}

impl Interval {
    /// The empty interval.
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The whole real line `(-∞, +∞)`.
    pub const ENTIRE: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates the interval `[lo, hi]`.
    ///
    /// If `lo > hi` or either bound is NaN the empty interval is returned.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// Creates the degenerate interval `[x, x]`.
    pub fn singleton(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// Creates an interval from an unordered pair of bounds.
    pub fn from_unordered(a: f64, b: f64) -> Self {
        Interval::new(a.min(b), a.max(b))
    }

    /// Lower bound. For the empty interval this is `+∞`.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound. For the empty interval this is `-∞`.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Returns `true` if the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Returns `true` if the interval is a single point.
    pub fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }

    /// Returns `true` if both bounds are finite.
    pub fn is_bounded(&self) -> bool {
        !self.is_empty() && self.lo.is_finite() && self.hi.is_finite()
    }

    /// Width `hi - lo` of the interval; `0` for the empty interval.
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Midpoint of the interval.
    ///
    /// For unbounded intervals a finite representative is returned (`0` for
    /// the entire line, a large finite value for half-lines) so that the
    /// branch-and-prune search can always pick a splitting point.
    pub fn midpoint(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => 0.5 * (self.lo + self.hi),
            (true, false) => self.lo + 1e8,
            (false, true) => self.hi - 1e8,
            (false, false) => 0.0,
        }
    }

    /// Magnitude: the largest absolute value contained in the interval.
    pub fn magnitude(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.lo.abs().max(self.hi.abs())
        }
    }

    /// Mignitude: the smallest absolute value contained in the interval.
    pub fn mignitude(&self) -> f64 {
        if self.is_empty() || self.contains(0.0) {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// Returns `true` if `x` lies within the interval.
    pub fn contains(&self, x: f64) -> bool {
        !self.is_empty() && self.lo <= x && x <= self.hi
    }

    /// Returns `true` if `other` is entirely contained in `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (!self.is_empty() && self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Interval hull (smallest interval containing both operands).
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Widens the interval outward by `margin` on both sides.
    pub fn inflate(&self, margin: f64) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo - margin, self.hi + margin)
    }

    /// Splits the interval at its midpoint into a lower and an upper half.
    pub fn bisect(&self) -> (Interval, Interval) {
        let mid = self.midpoint();
        (Interval::new(self.lo, mid), Interval::new(mid, self.hi))
    }

    // ---------------------------------------------------------------------
    // Elementary functions
    // ---------------------------------------------------------------------

    /// Absolute value.
    pub fn abs(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            -*self
        } else {
            Interval::new(0.0, self.magnitude())
        }
    }

    /// Elementwise minimum (envelope of `min(x, y)` for `x ∈ self`, `y ∈ other`).
    pub fn min(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Elementwise maximum.
    pub fn max(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Square of the interval (tighter than `self * self` around zero).
    pub fn square(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let a = self.lo * self.lo;
        let b = self.hi * self.hi;
        if self.contains(0.0) {
            Interval::new(0.0, up(a.max(b)))
        } else {
            Interval::new(down(a.min(b)), up(a.max(b)))
        }
    }

    /// Integer power `self^n`.
    pub fn powi(&self, n: i32) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if n == 0 {
            return Interval::singleton(1.0);
        }
        if n < 0 {
            return Interval::singleton(1.0) / self.powi(-n);
        }
        if n % 2 == 0 {
            // Even power: behaves like square of |x|^(n/2).
            let lo_p = self.lo.powi(n);
            let hi_p = self.hi.powi(n);
            if self.contains(0.0) {
                Interval::new(0.0, up(lo_p.max(hi_p)))
            } else {
                Interval::new(down(lo_p.min(hi_p)), up(lo_p.max(hi_p)))
            }
        } else {
            // Odd power: monotone.
            Interval::new(down(self.lo.powi(n)), up(self.hi.powi(n)))
        }
    }

    /// Square root. The negative part of the interval is clipped away; the
    /// result is empty if the whole interval is negative.
    pub fn sqrt(&self) -> Interval {
        if self.is_empty() || self.hi < 0.0 {
            return Interval::EMPTY;
        }
        let lo = self.lo.max(0.0);
        Interval::new(down(lo.sqrt()).max(0.0), up(self.hi.sqrt()))
    }

    /// Exponential function.
    pub fn exp(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(down(self.lo.exp()).max(0.0), up(self.hi.exp()))
    }

    /// Natural logarithm. The non-positive part of the interval is clipped;
    /// the result is empty if `hi <= 0`.
    pub fn ln(&self) -> Interval {
        if self.is_empty() || self.hi <= 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.lo <= 0.0 {
            f64::NEG_INFINITY
        } else {
            down(self.lo.ln())
        };
        Interval::new(lo, up(self.hi.ln()))
    }

    /// Hyperbolic tangent (monotone, so the enclosure is tight).
    pub fn tanh(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(down(self.lo.tanh()).max(-1.0), up(self.hi.tanh()).min(1.0))
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})` (monotone).
    pub fn sigmoid(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let s = |x: f64| 1.0 / (1.0 + (-x).exp());
        Interval::new(down(s(self.lo)).max(0.0), up(s(self.hi)).min(1.0))
    }

    /// Sine. Handles the periodic extrema correctly.
    pub fn sin(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.width() >= 2.0 * std::f64::consts::PI {
            return Interval::new(-1.0, 1.0);
        }
        let two_pi = 2.0 * std::f64::consts::PI;
        let half_pi = 0.5 * std::f64::consts::PI;
        // sin attains max 1 at pi/2 + 2k*pi and min -1 at -pi/2 + 2k*pi.
        let mut lo = down(self.lo.sin().min(self.hi.sin()));
        let mut hi = up(self.lo.sin().max(self.hi.sin()));
        if contains_periodic_point(self.lo, self.hi, half_pi, two_pi) {
            hi = 1.0;
        }
        if contains_periodic_point(self.lo, self.hi, -half_pi, two_pi) {
            lo = -1.0;
        }
        Interval::new(lo.max(-1.0), hi.min(1.0))
    }

    /// Cosine.
    pub fn cos(&self) -> Interval {
        // cos(x) = sin(x + pi/2); shifting by a constant keeps soundness
        // because the shift itself is outward rounded through `+`.
        (*self + Interval::singleton(0.5 * std::f64::consts::PI)).sin()
    }

    /// Tangent. Returns [`Interval::ENTIRE`] whenever the interval may contain
    /// a pole of `tan`.
    pub fn tan(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        let pi = std::f64::consts::PI;
        let half_pi = 0.5 * pi;
        if self.width() >= pi || contains_periodic_point(self.lo, self.hi, half_pi, pi) {
            return Interval::ENTIRE;
        }
        Interval::new(down(self.lo.tan()), up(self.hi.tan()))
    }

    /// Arctangent (monotone).
    pub fn atan(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(down(self.lo.atan()), up(self.hi.atan()))
    }
}

/// Returns `true` if the arithmetic progression `offset + k * period` (k ∈ ℤ)
/// intersects `[lo, hi]`.
fn contains_periodic_point(lo: f64, hi: f64, offset: f64, period: f64) -> bool {
    if !(lo.is_finite() && hi.is_finite()) {
        return true;
    }
    let k = ((lo - offset) / period).ceil();
    let point = offset + k * period;
    point <= hi + 1e-15
}

impl Default for Interval {
    fn default() -> Self {
        Interval::singleton(0.0)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl From<f64> for Interval {
    fn from(x: f64) -> Self {
        Interval::singleton(x)
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        if self.is_empty() {
            Interval::EMPTY
        } else {
            Interval::new(-self.hi, -self.lo)
        }
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(down(self.lo + rhs.lo), up(self.hi + rhs.hi))
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        self + (-rhs)
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        let candidates = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in candidates {
            // 0 * inf produces NaN; in interval semantics that product is 0.
            let c = if c.is_nan() { 0.0 } else { c };
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval::new(down(lo), up(hi))
    }
}

impl Div for Interval {
    type Output = Interval;
    fn div(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        if rhs.contains(0.0) {
            // Dividing by an interval containing zero: the enclosure is the
            // whole line unless the divisor is identically zero (then empty).
            if rhs.lo == 0.0 && rhs.hi == 0.0 {
                return Interval::EMPTY;
            }
            return Interval::ENTIRE;
        }
        let candidates = [
            self.lo / rhs.lo,
            self.lo / rhs.hi,
            self.hi / rhs.lo,
            self.hi / rhs.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in candidates {
            let c = if c.is_nan() { 0.0 } else { c };
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval::new(down(lo), up(hi))
    }
}

impl Add<f64> for Interval {
    type Output = Interval;
    fn add(self, rhs: f64) -> Interval {
        self + Interval::singleton(rhs)
    }
}

impl Sub<f64> for Interval {
    type Output = Interval;
    fn sub(self, rhs: f64) -> Interval {
        self - Interval::singleton(rhs)
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;
    fn mul(self, rhs: f64) -> Interval {
        self * Interval::singleton(rhs)
    }
}

impl Div<f64> for Interval {
    type Output = Interval;
    fn div(self, rhs: f64) -> Interval {
        self / Interval::singleton(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let x = Interval::new(1.0, 2.0);
        assert_eq!(x.lo(), 1.0);
        assert_eq!(x.hi(), 2.0);
        assert!(!x.is_empty());
        assert!(!x.is_singleton());
        assert!(x.is_bounded());
        assert_eq!(x.width(), 1.0);
        assert_eq!(x.midpoint(), 1.5);
        assert!(Interval::new(2.0, 1.0).is_empty());
        assert!(Interval::new(f64::NAN, 1.0).is_empty());
        assert!(Interval::singleton(3.0).is_singleton());
        assert_eq!(
            Interval::from_unordered(5.0, -1.0),
            Interval::new(-1.0, 5.0)
        );
        assert_eq!(Interval::from(2.5), Interval::singleton(2.5));
        assert_eq!(Interval::default(), Interval::singleton(0.0));
    }

    #[test]
    fn empty_and_entire_behave() {
        assert!(Interval::EMPTY.is_empty());
        assert_eq!(Interval::EMPTY.width(), 0.0);
        assert!(!Interval::ENTIRE.is_bounded());
        assert_eq!(Interval::ENTIRE.midpoint(), 0.0);
        assert!((Interval::EMPTY + Interval::new(0.0, 1.0)).is_empty());
        assert!((Interval::EMPTY * Interval::new(0.0, 1.0)).is_empty());
        assert!((-Interval::EMPTY).is_empty());
        assert!(Interval::EMPTY.abs().is_empty());
        assert!(Interval::EMPTY.sin().is_empty());
        assert!(Interval::EMPTY.exp().is_empty());
        assert!(Interval::EMPTY.sqrt().is_empty());
        assert!(Interval::EMPTY.tanh().is_empty());
    }

    #[test]
    fn containment_intersection_hull() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert!(a.contains(0.0) && a.contains(2.0) && !a.contains(2.1));
        assert!(a.contains_interval(&Interval::new(0.5, 1.5)));
        assert!(a.contains_interval(&Interval::EMPTY));
        assert_eq!(a.intersect(&b), Interval::new(1.0, 2.0));
        assert!(a.intersect(&Interval::new(5.0, 6.0)).is_empty());
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
        assert_eq!(a.hull(&Interval::EMPTY), a);
        assert_eq!(Interval::EMPTY.hull(&b), b);
        assert_eq!(a.inflate(0.5), Interval::new(-0.5, 2.5));
    }

    #[test]
    fn bisect_splits_at_midpoint() {
        let (left, right) = Interval::new(0.0, 4.0).bisect();
        assert_eq!(left, Interval::new(0.0, 2.0));
        assert_eq!(right, Interval::new(2.0, 4.0));
    }

    #[test]
    fn arithmetic_encloses_known_results() {
        let x = Interval::new(1.0, 2.0);
        let y = Interval::new(-1.0, 3.0);
        let s = x + y;
        assert!(s.lo() <= 0.0 && s.hi() >= 5.0);
        let d = x - y;
        assert!(d.lo() <= -2.0 && d.hi() >= 3.0);
        let p = x * y;
        assert!(p.lo() <= -2.0 && p.hi() >= 6.0);
        let q = x / Interval::new(2.0, 4.0);
        assert!(q.lo() <= 0.25 && q.hi() >= 1.0);
        assert_eq!((x + 1.0).midpoint(), 2.5);
        assert!((x * 2.0).contains(3.0));
        assert!((x - 0.5).contains(0.5));
        assert!((x / 2.0).contains(0.75));
    }

    #[test]
    fn division_by_zero_containing_interval() {
        let x = Interval::new(1.0, 2.0);
        assert_eq!(x / Interval::new(-1.0, 1.0), Interval::ENTIRE);
        assert!((x / Interval::singleton(0.0)).is_empty());
    }

    #[test]
    fn multiplication_with_infinite_bounds() {
        let zero = Interval::singleton(0.0);
        let entire = Interval::ENTIRE;
        let p = zero * entire;
        assert!(p.contains(0.0));
        assert!(!p.is_empty());
    }

    #[test]
    fn abs_min_max_magnitude() {
        let x = Interval::new(-2.0, 1.0);
        assert_eq!(x.abs(), Interval::new(0.0, 2.0));
        assert_eq!(Interval::new(1.0, 2.0).abs(), Interval::new(1.0, 2.0));
        assert_eq!(Interval::new(-3.0, -1.0).abs(), Interval::new(1.0, 3.0));
        assert_eq!(x.magnitude(), 2.0);
        assert_eq!(x.mignitude(), 0.0);
        assert_eq!(Interval::new(1.0, 2.0).mignitude(), 1.0);
        assert_eq!(Interval::new(-3.0, -1.0).mignitude(), 1.0);
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a.min(&b), Interval::new(0.0, 3.0));
        assert_eq!(a.max(&b), Interval::new(2.0, 5.0));
    }

    #[test]
    fn powers_and_square() {
        let x = Interval::new(-2.0, 3.0);
        let sq = x.square();
        assert!(sq.lo() <= 0.0 && sq.hi() >= 9.0);
        assert!(sq.lo() >= -1e-9);
        let cube = x.powi(3);
        assert!(cube.lo() <= -8.0 && cube.hi() >= 27.0);
        assert_eq!(x.powi(0), Interval::singleton(1.0));
        let inv = Interval::new(2.0, 4.0).powi(-1);
        assert!(inv.contains(0.25) && inv.contains(0.5));
        let even = Interval::new(1.0, 2.0).powi(4);
        assert!(even.contains(1.0) && even.contains(16.0));
    }

    #[test]
    fn overflowed_bounds_round_back_to_finite_values() {
        // exp over a large but finite range overflows the f64 computation of
        // *both* endpoints; the enclosure must keep a finite lower bound
        // (the true values are finite reals above MAX), not collapse to the
        // absurd [+∞, +∞].
        let e = Interval::new(1000.0, 2000.0).exp();
        assert_eq!(e.lo(), f64::MAX);
        assert_eq!(e.hi(), f64::INFINITY);
        // Same overflow through multiplication and addition.
        let huge = Interval::new(1e300, 1e305);
        let p = huge * huge;
        assert_eq!(p.lo(), f64::MAX);
        let s = Interval::new(f64::MAX, f64::MAX) + Interval::new(f64::MAX, f64::MAX);
        assert_eq!(s.lo(), f64::MAX);
        // The mirror image for upper bounds.
        let n = Interval::new(-1e305, -1e300) * Interval::new(1e300, 1e305);
        assert_eq!(n.hi(), f64::MIN);
        assert_eq!(n.lo(), f64::NEG_INFINITY);
    }

    #[test]
    fn sqrt_exp_ln() {
        let x = Interval::new(4.0, 9.0);
        let r = x.sqrt();
        assert!(r.contains(2.0) && r.contains(3.0));
        assert!(Interval::new(-3.0, -1.0).sqrt().is_empty());
        let clipped = Interval::new(-1.0, 4.0).sqrt();
        assert!(clipped.contains(0.0) && clipped.contains(2.0));

        let e = Interval::new(0.0, 1.0).exp();
        assert!(e.contains(1.0) && e.contains(std::f64::consts::E));
        assert!(e.lo() >= 0.0);

        let l = Interval::new(1.0, std::f64::consts::E).ln();
        assert!(l.contains(0.0) && l.contains(1.0));
        assert!(Interval::new(-2.0, -1.0).ln().is_empty());
        assert_eq!(Interval::new(0.0, 1.0).ln().lo(), f64::NEG_INFINITY);
    }

    #[test]
    fn tanh_sigmoid_atan_are_tight_monotone_enclosures() {
        let x = Interval::new(-1.0, 2.0);
        let t = x.tanh();
        assert!(t.contains((-1.0f64).tanh()) && t.contains(2.0f64.tanh()));
        assert!(t.lo() >= -1.0 && t.hi() <= 1.0);
        let s = x.sigmoid();
        assert!(s.contains(1.0 / (1.0 + 1.0f64.exp())));
        assert!(s.lo() >= 0.0 && s.hi() <= 1.0);
        let a = x.atan();
        assert!(a.contains(0.0) && a.contains(1.0f64.atan()));
    }

    #[test]
    fn sin_cos_handle_extrema() {
        let x = Interval::new(0.0, std::f64::consts::PI);
        let s = x.sin();
        assert!(s.hi() >= 1.0 - 1e-12);
        assert!(s.lo() <= 1e-12);
        let c = x.cos();
        assert!(c.lo() <= -1.0 + 1e-9);
        assert!(c.hi() >= 1.0 - 1e-9);
        // Narrow interval away from extrema is tight.
        let narrow = Interval::new(0.1, 0.2).sin();
        assert!(narrow.width() < 0.11);
        // Width exceeding a full period spans [-1, 1].
        let wide = Interval::new(0.0, 10.0).sin();
        assert_eq!(wide, Interval::new(-1.0, 1.0));
        // Negative extremum inside.
        let neg = Interval::new(-2.0, -1.0).sin();
        assert!(neg.lo() <= -1.0 + 1e-12);
    }

    #[test]
    fn tan_detects_poles() {
        let safe = Interval::new(-0.5, 0.5).tan();
        assert!(safe.is_bounded());
        assert!(safe.contains(0.0));
        let pole = Interval::new(1.0, 2.0).tan(); // contains pi/2
        assert_eq!(pole, Interval::ENTIRE);
        let wide = Interval::new(0.0, 4.0).tan();
        assert_eq!(wide, Interval::ENTIRE);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Interval::new(1.0, 2.0)), "[1, 2]");
        assert_eq!(format!("{}", Interval::EMPTY), "∅");
    }

    fn finite_interval() -> impl Strategy<Value = (Interval, f64)> {
        (-50.0f64..50.0, -50.0f64..50.0, 0.0f64..1.0).prop_map(|(a, b, t)| {
            let iv = Interval::from_unordered(a, b);
            let point = iv.lo() + t * iv.width();
            (iv, point)
        })
    }

    proptest! {
        #[test]
        fn prop_addition_encloses((x, px) in finite_interval(), (y, py) in finite_interval()) {
            prop_assert!((x + y).contains(px + py));
        }

        #[test]
        fn prop_multiplication_encloses((x, px) in finite_interval(), (y, py) in finite_interval()) {
            prop_assert!((x * y).contains(px * py));
        }

        #[test]
        fn prop_subtraction_encloses((x, px) in finite_interval(), (y, py) in finite_interval()) {
            prop_assert!((x - y).contains(px - py));
        }

        #[test]
        fn prop_division_encloses((x, px) in finite_interval(), (y, py) in finite_interval()) {
            prop_assume!(!y.contains(0.0));
            prop_assert!((x / y).contains(px / py));
        }

        #[test]
        fn prop_unary_functions_enclose((x, px) in finite_interval()) {
            prop_assert!(x.square().contains(px * px));
            prop_assert!(x.abs().contains(px.abs()));
            prop_assert!(x.sin().contains(px.sin()));
            prop_assert!(x.cos().contains(px.cos()));
            prop_assert!(x.tanh().contains(px.tanh()));
            prop_assert!(x.atan().contains(px.atan()));
            prop_assert!(x.powi(3).contains(px.powi(3)));
            if px > 0.0 {
                prop_assert!(x.sqrt().contains(px.sqrt()));
                prop_assert!(x.ln().contains(px.ln()));
            }
            // exp can overflow interest range; restrict to moderate values
            if px.abs() < 30.0 {
                let clamped = x.intersect(&Interval::new(-30.0, 30.0));
                prop_assert!(clamped.exp().contains(px.exp()));
            }
        }

        #[test]
        fn prop_intersection_is_subset((x, _) in finite_interval(), (y, _) in finite_interval()) {
            let inter = x.intersect(&y);
            prop_assert!(x.contains_interval(&inter));
            prop_assert!(y.contains_interval(&inter));
            let hull = x.hull(&y);
            prop_assert!(hull.contains_interval(&x));
            prop_assert!(hull.contains_interval(&y));
        }

        #[test]
        fn prop_bisect_covers((x, px) in finite_interval()) {
            prop_assume!(x.width() > 0.0);
            let (l, r) = x.bisect();
            prop_assert!(l.contains(px) || r.contains(px));
            prop_assert!(l.hull(&r) == x || l.hull(&r).contains_interval(&x));
        }
    }
}
