//! Matrix decompositions: LU (partial pivoting), Cholesky, and Householder QR.

use crate::{LinalgError, Matrix, Result, Vector};

/// Threshold below which a pivot is treated as zero.
const PIVOT_TOL: f64 = 1e-12;

/// LU decomposition with partial (row) pivoting: `P A = L U`.
///
/// # Examples
///
/// ```
/// use nncps_linalg::{LuDecomposition, Matrix, Vector};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = LuDecomposition::new(&a).expect("a is invertible");
/// let x = lu.solve(&Vector::from_slice(&[3.0, 5.0])).expect("solvable");
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined storage: strictly-lower part holds L (unit diagonal implied),
    /// upper triangle (including diagonal) holds U.
    lu: Matrix,
    /// Row permutation: row `i` of the factorization corresponds to row
    /// `perm[i]` of the original matrix.
    perm: Vec<usize>,
    /// Parity of the permutation (`+1.0` or `-1.0`), used for determinants.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorizes the given square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square and
    /// [`LinalgError::Singular`] if a pivot smaller than `1e-12` in magnitude
    /// is encountered.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOL {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Forward substitution with the permuted right-hand side.
        let mut y = Vector::from_fn(n, |i| b[self.perm[i]]);
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Cholesky decomposition `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// # Examples
///
/// ```
/// use nncps_linalg::{CholeskyDecomposition, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = CholeskyDecomposition::new(&a).expect("a is SPD");
/// let l = chol.factor();
/// let recon = l.mat_mul(&l.transpose());
/// assert!((&recon - &a).norm_frobenius() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    l: Matrix,
}

impl CholeskyDecomposition {
    /// Factorizes the given symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper triangle
    /// is assumed rather than verified.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] if a non-positive pivot appears.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// Returns the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Consumes the decomposition and returns the factor `L`.
    pub fn into_factor(self) -> Matrix {
        self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Solve L y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Solve Lᵀ x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (twice the sum of the logs of the diagonal of `L`).
    pub fn log_determinant(&self) -> f64 {
        2.0 * self.l.diagonal().iter().map(|x| x.ln()).sum::<f64>()
    }
}

/// QR decomposition `A = Q R` via Householder reflections.
///
/// Works for any `m x n` matrix with `m >= n`; `Q` is `m x m` orthogonal and
/// `R` is `m x n` upper trapezoidal.
///
/// # Examples
///
/// ```
/// use nncps_linalg::{Matrix, QrDecomposition};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
/// let qr = QrDecomposition::new(&a);
/// let recon = qr.q().mat_mul(qr.r());
/// assert!((&recon - &a).norm_frobenius() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    q: Matrix,
    r: Matrix,
}

impl QrDecomposition {
    /// Factorizes the given matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more columns than rows.
    pub fn new(a: &Matrix) -> Self {
        let m = a.rows();
        let n = a.cols();
        assert!(m >= n, "QR requires rows >= cols, got {m}x{n}");
        let mut r = a.clone();
        let mut q = Matrix::identity(m);

        for k in 0..n.min(m.saturating_sub(1)) {
            // Build the Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < PIVOT_TOL {
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = Vector::zeros(m);
            v[k] = r[(k, k)] - alpha;
            for i in (k + 1)..m {
                v[i] = r[(i, k)];
            }
            let vnorm2 = v.dot(&v);
            if vnorm2 < PIVOT_TOL * PIVOT_TOL {
                continue;
            }
            // Apply H = I - 2 v vᵀ / (vᵀ v) to R (left) and accumulate into Q.
            for j in 0..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let scale = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[(i, j)] -= scale * v[i];
                }
            }
            for j in 0..m {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * q[(j, i)];
                }
                let scale = 2.0 * dot / vnorm2;
                for i in k..m {
                    q[(j, i)] -= scale * v[i];
                }
            }
        }
        // Clean tiny sub-diagonal noise in R.
        for i in 0..m {
            for j in 0..n.min(i) {
                if r[(i, j)].abs() < 1e-14 {
                    r[(i, j)] = 0.0;
                }
            }
        }
        QrDecomposition { q, r }
    }

    /// The orthogonal factor `Q`.
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-trapezoidal factor `R`.
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min ||A x - b||` for a full-column-rank `A`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong length
    /// and [`LinalgError::Singular`] if `R` has a (near-)zero diagonal entry.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector> {
        let m = self.q.rows();
        let n = self.r.cols();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {m}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // y = Qᵀ b
        let y = self.q.vec_mat(b);
        // Back-substitute R x = y (top n rows).
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.r[(i, j)] * x[j];
            }
            let pivot = self.r[(i, i)];
            if pivot.abs() < PIVOT_TOL {
                return Err(LinalgError::Singular);
            }
            x[i] = acc / pivot;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lu_factors_and_solves() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 1.0, 1.0], &[2.0, 0.0, 3.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert_eq!(lu.dim(), 3);
        let b = Vector::from_slice(&[5.0, 6.0, 13.0]);
        let x = lu.solve(&b).unwrap();
        assert!((&a.mat_vec(&x) - &b).norm() < 1e-12);
        assert!((lu.determinant() - a.determinant().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn lu_rejects_bad_inputs() {
        assert!(matches!(
            LuDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            LuDecomposition::new(&Matrix::zeros(3, 3)),
            Err(LinalgError::Singular)
        ));
        let a = Matrix::identity(2);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&Vector::zeros(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn lu_determinant_tracks_permutation_sign() {
        // This matrix needs a row swap; determinant is -1 * (product of pivots sign).
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs_and_solves() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let chol = CholeskyDecomposition::new(&a).unwrap();
        let l = chol.factor();
        let recon = l.mat_mul(&l.transpose());
        assert!((&recon - &a).norm_frobenius() < 1e-12);
        let b = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let x = chol.solve(&b).unwrap();
        assert!((&a.mat_vec(&x) - &b).norm() < 1e-12);
        let det = a.determinant().unwrap();
        assert!((chol.log_determinant() - det.ln()).abs() < 1e-10);
        let owned = chol.into_factor();
        assert_eq!(owned.rows(), 3);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(
            CholeskyDecomposition::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        assert!(matches!(
            CholeskyDecomposition::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn cholesky_solve_rejects_wrong_length() {
        let a = Matrix::identity(2);
        let chol = CholeskyDecomposition::new(&a).unwrap();
        assert!(matches!(
            chol.solve(&Vector::zeros(3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthogonal() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[1.0, 4.0], &[1.0, 2.0]]);
        let qr = QrDecomposition::new(&a);
        let recon = qr.q().mat_mul(qr.r());
        assert!((&recon - &a).norm_frobenius() < 1e-10);
        let qtq = qr.q().transpose().mat_mul(qr.q());
        assert!((&qtq - &Matrix::identity(3)).norm_frobenius() < 1e-10);
        // R is upper trapezoidal.
        for i in 0..3 {
            for j in 0..2.min(i) {
                assert!(qr.r()[(i, j)].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn qr_least_squares_matches_known_fit() {
        // Fit y = c0 + c1 * t to points (0,1), (1,3), (2,5) — exact line 1 + 2t.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = Vector::from_slice(&[1.0, 3.0, 5.0]);
        let qr = QrDecomposition::new(&a);
        let x = qr.solve_least_squares(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        assert!(matches!(
            qr.solve_least_squares(&Vector::zeros(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn qr_detects_rank_deficiency_on_solve() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let qr = QrDecomposition::new(&a);
        assert!(matches!(
            qr.solve_least_squares(&Vector::from_slice(&[1.0, 2.0, 3.0])),
            Err(LinalgError::Singular)
        ));
    }

    proptest! {
        #[test]
        fn prop_lu_solution_satisfies_system(
            vals in proptest::collection::vec(-3.0f64..3.0, 16),
            rhs in proptest::collection::vec(-3.0f64..3.0, 4),
        ) {
            let mut a = Matrix::from_row_major(4, 4, vals);
            for i in 0..4 {
                a[(i, i)] += 15.0; // diagonally dominant => invertible
            }
            let b = Vector::from_slice(&rhs);
            let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
            prop_assert!((&a.mat_vec(&x) - &b).norm() < 1e-8);
        }

        #[test]
        fn prop_cholesky_reconstruction(vals in proptest::collection::vec(-2.0f64..2.0, 9)) {
            // Build an SPD matrix as B Bᵀ + I.
            let b = Matrix::from_row_major(3, 3, vals);
            let a = &b.mat_mul(&b.transpose()) + &Matrix::identity(3);
            let l = CholeskyDecomposition::new(&a).unwrap().into_factor();
            let recon = l.mat_mul(&l.transpose());
            prop_assert!((&recon - &a).norm_frobenius() < 1e-9);
        }

        #[test]
        fn prop_qr_orthogonality(vals in proptest::collection::vec(-5.0f64..5.0, 12)) {
            let a = Matrix::from_row_major(4, 3, vals);
            let qr = QrDecomposition::new(&a);
            let qtq = qr.q().transpose().mat_mul(qr.q());
            prop_assert!((&qtq - &Matrix::identity(4)).norm_frobenius() < 1e-8);
            prop_assert!((&qr.q().mat_mul(qr.r()) - &a).norm_frobenius() < 1e-8);
        }
    }
}
