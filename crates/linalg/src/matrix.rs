//! Dense row-major matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{LinalgError, LuDecomposition, Result, Vector};

/// A dense row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use nncps_linalg::{Matrix, Vector};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = Vector::from_slice(&[1.0, 1.0]);
/// assert_eq!(a.mat_vec(&x).as_slice(), &[3.0, 7.0]);
/// assert_eq!(a.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// ```
    /// use nncps_linalg::Matrix;
    /// let eye = Matrix::identity(2);
    /// assert_eq!(eye[(0, 0)], 1.0);
    /// assert_eq!(eye[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a function of the row and column index.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by copying a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "row {i} has inconsistent length");
        }
        Matrix::from_fn(nrows, ncols, |i, j| rows[i][j])
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &Vector) -> Self {
        let n = diag.len();
        Matrix::from_fn(n, n, |i, j| if i == j { diag[i] } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the underlying row-major data as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the given row as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> Vector {
        assert!(row < self.rows, "row index out of bounds");
        Vector::from_slice(&self.data[row * self.cols..(row + 1) * self.cols])
    }

    /// Returns the given column as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn column(&self, col: usize) -> Vector {
        assert!(col < self.cols, "column index out of bounds");
        Vector::from_fn(self.rows, |i| self[(i, col)])
    }

    /// Overwrites the given row with the contents of `values`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or the length does not match.
    pub fn set_row(&mut self, row: usize, values: &Vector) {
        assert!(row < self.rows, "row index out of bounds");
        assert_eq!(values.len(), self.cols, "row length mismatch");
        for j in 0..self.cols {
            self[(row, j)] = values[j];
        }
    }

    /// Returns the diagonal as a vector (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self[(i, i)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        Vector::from_fn(self.rows, |i| {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            acc
        })
    }

    /// Vector–matrix product `xᵀ * A`, returned as a vector of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn vec_mat(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.rows, "vec_mat dimension mismatch");
        Vector::from_fn(self.cols, |j| {
            let mut acc = 0.0;
            for i in 0..self.rows {
                acc += x[i] * self[(i, j)];
            }
            acc
        })
    }

    /// Matrix–matrix product `A * B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mat_mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "mat_mul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Returns `self` scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] * factor)
    }

    /// Computes the quadratic form `xᵀ A x`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `x` has the wrong length.
    pub fn quadratic_form(&self, x: &Vector) -> f64 {
        assert!(self.is_square(), "quadratic form requires a square matrix");
        x.dot(&self.mat_vec(x))
    }

    /// Symmetrizes the matrix in place: `A ← (A + Aᵀ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Returns `true` if the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Solves `A x = b` for `x` using LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square,
    /// [`LinalgError::DimensionMismatch`] if `b` has the wrong length, or
    /// [`LinalgError::Singular`] if the matrix is numerically singular.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        LuDecomposition::new(self)?.solve(b)
    }

    /// Computes the inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Matrix::solve`].
    pub fn inverse(&self) -> Result<Matrix> {
        let lu = LuDecomposition::new(self)?;
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let e = Vector::from_fn(n, |i| if i == j { 1.0 } else { 0.0 });
            let col = lu.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Computes the determinant via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square.
    /// A singular matrix yields `Ok(0.0)` rather than an error.
    pub fn determinant(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        match LuDecomposition::new(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition shape mismatch"
        );
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] + rhs[(i, j)])
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction shape mismatch"
        );
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - rhs[(i, j)])
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mat_mul(rhs)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn constructors_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(Matrix::identity(3)[(2, 2)], 1.0);
        assert_eq!(Matrix::zeros(2, 3).as_slice(), &[0.0; 6]);
        let d = Matrix::from_diagonal(&Vector::from_slice(&[1.0, 2.0]));
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        let rm = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(rm, m);
    }

    #[test]
    fn rows_columns_and_diagonal() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row(1).as_slice(), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2).as_slice(), &[3.0, 6.0]);
        assert_eq!(m.diagonal().as_slice(), &[1.0, 5.0]);
        let mut m2 = m.clone();
        m2.set_row(0, &Vector::from_slice(&[7.0, 8.0, 9.0]));
        assert_eq!(m2.row(0).as_slice(), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn products() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let ab = a.mat_mul(&b);
        assert_eq!(ab, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        let x = Vector::from_slice(&[1.0, -1.0]);
        assert_eq!(a.mat_vec(&x).as_slice(), &[-1.0, -1.0]);
        assert_eq!(a.vec_mat(&x).as_slice(), &[-2.0, -2.0]);
        assert_eq!((&a * &b), ab);
        assert_eq!((&a * 2.0)[(0, 0)], 2.0);
    }

    #[test]
    fn add_sub_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        assert_eq!((&a + &b)[(0, 0)], 2.0);
        assert_eq!((&a - &b)[(1, 1)], 3.0);
        assert_eq!(a.transpose()[(0, 1)], 3.0);
    }

    #[test]
    fn quadratic_form_and_symmetry() {
        let mut a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let x = Vector::from_slice(&[1.0, 2.0]);
        // x' A x = 2 + 2 + 12 = 16
        assert_eq!(a.quadratic_form(&x), 16.0);
        assert!(!a.is_symmetric(1e-12));
        a.symmetrize();
        assert!(a.is_symmetric(1e-12));
        assert_eq!(a[(0, 1)], 0.5);
        assert_eq!(a[(1, 0)], 0.5);
    }

    #[test]
    fn solve_and_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = Vector::from_slice(&[1.0, 2.0]);
        let x = a.solve(&b).unwrap();
        let r = &a.mat_vec(&x) - &b;
        assert!(r.norm() < 1e-12);
        let inv = a.inverse().unwrap();
        let eye = a.mat_mul(&inv);
        assert!(approx_eq(eye[(0, 0)], 1.0, 1e-12));
        assert!(approx_eq(eye[(0, 1)], 0.0, 1e-12));
    }

    #[test]
    fn determinant_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(approx_eq(a.determinant().unwrap(), -2.0, 1e-12));
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(approx_eq(singular.determinant().unwrap(), 0.0, 1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(rect.determinant().is_err());
    }

    #[test]
    fn norms_and_finiteness() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.norm_frobenius(), 5.0);
        assert_eq!(a.norm_max(), 4.0);
        assert!(a.is_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(!b.is_finite());
    }

    #[test]
    fn singular_solve_is_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(
            a.solve(&Vector::from_slice(&[1.0, 1.0])).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn display_shows_rows() {
        let a = Matrix::identity(2);
        let s = format!("{a}");
        assert_eq!(s.lines().count(), 2);
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(vals in proptest::collection::vec(-100.0f64..100.0, 12)) {
            let m = Matrix::from_row_major(3, 4, vals);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_identity_is_neutral(vals in proptest::collection::vec(-100.0f64..100.0, 9)) {
            let m = Matrix::from_row_major(3, 3, vals);
            let eye = Matrix::identity(3);
            prop_assert_eq!(m.mat_mul(&eye), m.clone());
            prop_assert_eq!(eye.mat_mul(&m), m);
        }

        #[test]
        fn prop_solve_recovers_solution(vals in proptest::collection::vec(-5.0f64..5.0, 9),
                                        xs in proptest::collection::vec(-5.0f64..5.0, 3)) {
            // Make the matrix diagonally dominant so it is well-conditioned.
            let mut m = Matrix::from_row_major(3, 3, vals);
            for i in 0..3 {
                m[(i, i)] += 20.0;
            }
            let x_true = Vector::from_slice(&xs);
            let b = m.mat_vec(&x_true);
            let x = m.solve(&b).unwrap();
            prop_assert!((&x - &x_true).norm() < 1e-8);
        }
    }
}
