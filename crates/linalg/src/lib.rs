//! Dense linear algebra primitives used throughout the `nncps` workspace.
//!
//! The barrier-certificate pipeline needs only small, dense problems: the
//! generator-function template is a quadratic form over a handful of state
//! variables, the CMA-ES covariance matrix has dimension equal to the number
//! of neural-network parameters, and the neural networks themselves are
//! evaluated with dense matrix–vector products.  This crate therefore provides
//! a compact, dependency-free implementation of:
//!
//! * [`Vector`] and [`Matrix`] value types with the usual arithmetic,
//! * LU decomposition with partial pivoting ([`LuDecomposition`]),
//! * Cholesky decomposition for symmetric positive-definite matrices
//!   ([`CholeskyDecomposition`]),
//! * QR decomposition via Householder reflections ([`QrDecomposition`]),
//! * symmetric eigendecomposition via the cyclic Jacobi method
//!   ([`SymmetricEigen`]), and
//! * quadratic-form helpers used by the barrier templates.
//!
//! # Examples
//!
//! ```
//! use nncps_linalg::{Matrix, Vector};
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.solve(&b).expect("matrix is invertible");
//! let residual = &a.mat_vec(&x) - &b;
//! assert!(residual.norm() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod eigen;
mod error;
mod matrix;
mod vector;

pub use decompose::{CholeskyDecomposition, LuDecomposition, QrDecomposition};
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use vector::Vector;

/// Convenience alias for results returned by fallible linear-algebra routines.
pub type Result<T> = std::result::Result<T, LinalgError>;
