//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::{LinalgError, Matrix, Result, Vector};

/// Eigendecomposition `A = V Λ Vᵀ` of a real symmetric matrix.
///
/// The cyclic Jacobi method repeatedly zeroes off-diagonal entries with Givens
/// rotations. It is slow for very large matrices but extremely robust, which
/// is exactly what the CMA-ES covariance update and the barrier-template
/// positive-semidefiniteness checks need (dimensions up to a few thousand).
///
/// # Examples
///
/// ```
/// use nncps_linalg::{Matrix, SymmetricEigen};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = SymmetricEigen::new(&a).expect("a is symmetric");
/// let mut vals: Vec<f64> = eig.eigenvalues().iter().copied().collect();
/// vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
/// assert!((vals[0] - 1.0).abs() < 1e-10);
/// assert!((vals[1] - 3.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vector,
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Default maximum number of Jacobi sweeps.
    pub const DEFAULT_MAX_SWEEPS: usize = 100;

    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// The input is symmetrized (averaged with its transpose) before the
    /// iteration to absorb round-off asymmetry.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NoConvergence`] if the off-diagonal mass does not drop
    /// below tolerance within [`Self::DEFAULT_MAX_SWEEPS`] sweeps.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::with_max_sweeps(a, Self::DEFAULT_MAX_SWEEPS)
    }

    /// Computes the eigendecomposition with an explicit sweep budget.
    ///
    /// # Errors
    ///
    /// Same as [`SymmetricEigen::new`].
    pub fn with_max_sweeps(a: &Matrix, max_sweeps: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);

        if n <= 1 {
            return Ok(SymmetricEigen {
                eigenvalues: m.diagonal(),
                eigenvectors: v,
            });
        }

        let tol = 1e-14 * m.norm_frobenius().max(1.0);
        for _sweep in 0..max_sweeps {
            let off = off_diagonal_norm(&m);
            if off <= tol {
                return Ok(SymmetricEigen {
                    eigenvalues: m.diagonal(),
                    eigenvectors: v,
                });
            }
            for p in 0..n - 1 {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Compute the Jacobi rotation (c, s) that annihilates m[(p, q)].
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Update rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate the rotation into the eigenvector matrix.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        if off_diagonal_norm(&m) <= tol * 10.0 {
            Ok(SymmetricEigen {
                eigenvalues: m.diagonal(),
                eigenvectors: v,
            })
        } else {
            Err(LinalgError::NoConvergence {
                iterations: max_sweeps,
            })
        }
    }

    /// Eigenvalues, in the order matching the eigenvector columns (not sorted).
    pub fn eigenvalues(&self) -> &Vector {
        &self.eigenvalues
    }

    /// Matrix whose columns are the (orthonormal) eigenvectors.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Smallest eigenvalue.
    pub fn min_eigenvalue(&self) -> f64 {
        self.eigenvalues
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest eigenvalue.
    pub fn max_eigenvalue(&self) -> f64 {
        self.eigenvalues
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns `true` if all eigenvalues exceed `tol` (positive definiteness).
    pub fn is_positive_definite(&self, tol: f64) -> bool {
        self.min_eigenvalue() > tol
    }

    /// Reconstructs `A^{1/2} = V Λ^{1/2} Vᵀ`, clamping negative eigenvalues to zero.
    pub fn sqrt_matrix(&self) -> Matrix {
        let n = self.eigenvalues.len();
        let sqrt_diag =
            Matrix::from_diagonal(&Vector::from_fn(n, |i| self.eigenvalues[i].max(0.0).sqrt()));
        self.eigenvectors
            .mat_mul(&sqrt_diag)
            .mat_mul(&self.eigenvectors.transpose())
    }

    /// Reconstructs `V f(Λ) Vᵀ` for an arbitrary spectral function `f`.
    pub fn spectral_map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        let n = self.eigenvalues.len();
        let diag = Matrix::from_diagonal(&Vector::from_fn(n, |i| f(self.eigenvalues[i])));
        self.eigenvectors
            .mat_mul(&diag)
            .mat_mul(&self.eigenvectors.transpose())
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                acc += m[(i, j)] * m[(i, j)];
            }
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_eigenvalues(eig: &SymmetricEigen) -> Vec<f64> {
        let mut v: Vec<f64> = eig.eigenvalues().iter().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn known_2x2_spectrum() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let vals = sorted_eigenvalues(&eig);
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        assert!(eig.is_positive_definite(0.0));
        assert!((eig.min_eigenvalue() - 1.0).abs() < 1e-10);
        assert!((eig.max_eigenvalue() - 3.0).abs() < 1e-10);
    }

    #[test]
    fn indefinite_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(!eig.is_positive_definite(0.0));
        let vals = sorted_eigenvalues(&eig);
        assert!((vals[0] + 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diagonal(&Vector::from_slice(&[5.0, -2.0, 0.5]));
        let eig = SymmetricEigen::new(&a).unwrap();
        let vals = sorted_eigenvalues(&eig);
        assert!((vals[0] + 2.0).abs() < 1e-12);
        assert!((vals[1] - 0.5).abs() < 1e-12);
        assert!((vals[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let recon = eig.spectral_map(|x| x);
        assert!((&recon - &a).norm_frobenius() < 1e-10);
        // sqrt(A) squared = A
        let s = eig.sqrt_matrix();
        assert!((&s.mat_mul(&s) - &a).norm_frobenius() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let v = eig.eigenvectors();
        let vtv = v.transpose().mat_mul(v);
        assert!((&vtv - &Matrix::identity(3)).norm_frobenius() < 1e-10);
    }

    #[test]
    fn one_by_one_and_errors() {
        let a = Matrix::from_rows(&[&[7.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues().as_slice(), &[7.0]);
        assert!(matches!(
            SymmetricEigen::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 3.0]]);
        let eig = SymmetricEigen::new(&a).unwrap();
        for k in 0..2 {
            let v = eig.eigenvectors().column(k);
            let av = a.mat_vec(&v);
            let lv = v.scaled(eig.eigenvalues()[k]);
            assert!((&av - &lv).norm() < 1e-10);
        }
    }

    proptest! {
        #[test]
        fn prop_spd_matrices_have_positive_spectrum(
            vals in proptest::collection::vec(-2.0f64..2.0, 16)
        ) {
            let b = Matrix::from_row_major(4, 4, vals);
            let a = &b.mat_mul(&b.transpose()) + &Matrix::identity(4);
            let eig = SymmetricEigen::new(&a).unwrap();
            prop_assert!(eig.is_positive_definite(1e-9));
        }

        #[test]
        fn prop_trace_equals_eigenvalue_sum(
            vals in proptest::collection::vec(-3.0f64..3.0, 9)
        ) {
            let mut a = Matrix::from_row_major(3, 3, vals);
            a.symmetrize();
            let eig = SymmetricEigen::new(&a).unwrap();
            let trace: f64 = a.diagonal().iter().sum();
            let sum: f64 = eig.eigenvalues().iter().sum();
            prop_assert!((trace - sum).abs() < 1e-8);
        }

        #[test]
        fn prop_reconstruction(vals in proptest::collection::vec(-3.0f64..3.0, 9)) {
            let mut a = Matrix::from_row_major(3, 3, vals);
            a.symmetrize();
            let eig = SymmetricEigen::new(&a).unwrap();
            let recon = eig.spectral_map(|x| x);
            prop_assert!((&recon - &a).norm_frobenius() < 1e-8);
        }
    }
}
