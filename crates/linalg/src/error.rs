//! Error type shared by the fallible linear-algebra routines.

use std::error::Error;
use std::fmt;

/// Errors produced by decomposition and solve routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A matrix required to be (numerically) invertible is singular.
    Singular,
    /// Cholesky decomposition was requested for a matrix that is not
    /// symmetric positive definite.
    NotPositiveDefinite,
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration did not converge after {iterations} sweeps")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert_eq!(err.to_string(), "matrix must be square, got 2x3");
        let err = LinalgError::Singular;
        assert!(err.to_string().contains("singular"));
        let err = LinalgError::NoConvergence { iterations: 7 };
        assert!(err.to_string().contains('7'));
        let err = LinalgError::DimensionMismatch {
            expected: "3".into(),
            found: "4".into(),
        };
        assert!(err.to_string().contains("expected 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
