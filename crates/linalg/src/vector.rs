//! Dense column vectors backed by `Vec<f64>`.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense column vector of `f64` values.
///
/// `Vector` is a thin wrapper around `Vec<f64>` that provides the arithmetic
/// operations needed by the optimization and verification code: addition,
/// subtraction, scaling, dot products, and norms.
///
/// # Examples
///
/// ```
/// use nncps_linalg::Vector;
///
/// let a = Vector::from_slice(&[1.0, 2.0, 3.0]);
/// let b = Vector::from_slice(&[4.0, 5.0, 6.0]);
/// assert_eq!(a.dot(&b), 32.0);
/// assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `len`.
    ///
    /// ```
    /// use nncps_linalg::Vector;
    /// let v = Vector::zeros(3);
    /// assert_eq!(v.as_slice(), &[0.0, 0.0, 0.0]);
    /// ```
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector whose entries are all `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Creates a vector by copying the given slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from an owned `Vec<f64>` without copying.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Vector { data: values }
    }

    /// Creates a length-`len` vector from a function of the index.
    ///
    /// ```
    /// use nncps_linalg::Vector;
    /// let v = Vector::from_fn(4, |i| i as f64 * 2.0);
    /// assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0, 6.0]);
    /// ```
    pub fn from_fn<F: FnMut(usize) -> f64>(len: usize, f: F) -> Self {
        Vector {
            data: (0..len).map(f).collect(),
        }
    }

    /// Returns the number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entries as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns an iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Returns a mutable iterator over the entries.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Maximum absolute entry (L∞ norm). Returns 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Sum of absolute entries (L1 norm).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Returns a new vector scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Vector {
        Vector::from_fn(self.len(), |i| self.data[i] * factor)
    }

    /// Scales this vector in place by `factor`.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Adds `factor * other` to this vector in place (an "axpy" update).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn axpy(&mut self, factor: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy requires equal lengths");
        for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += factor * y;
        }
    }

    /// Componentwise product (Hadamard product).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn component_mul(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "hadamard requires equal lengths");
        Vector::from_fn(self.len(), |i| self.data[i] * other.data[i])
    }

    /// Returns the index and value of the maximum entry, or `None` if empty.
    pub fn argmax(&self) -> Option<(usize, f64)> {
        self.data
            .iter()
            .copied()
            .enumerate()
            .fold(None, |best, (i, x)| match best {
                Some((_, bx)) if bx >= x => best,
                _ => Some((i, x)),
            })
    }

    /// Returns the index and value of the minimum entry, or `None` if empty.
    pub fn argmin(&self) -> Option<(usize, f64)> {
        self.data
            .iter()
            .copied()
            .enumerate()
            .fold(None, |best, (i, x)| match best {
                Some((_, bx)) if bx <= x => best,
                _ => Some((i, x)),
            })
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(values: Vec<f64>) -> Self {
        Vector::from_vec(values)
    }
}

impl From<&[f64]> for Vector {
    fn from(values: &[f64]) -> Self {
        Vector::from_slice(values)
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        Vector::from_fn(self.len(), |i| self[i] + rhs[i])
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, rhs: Vector) -> Vector {
        &self + &rhs
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        Vector::from_fn(self.len(), |i| self[i] - rhs[i])
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, rhs: Vector) -> Vector {
        &self - &rhs
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_produce_expected_contents() {
        assert_eq!(Vector::zeros(2).as_slice(), &[0.0, 0.0]);
        assert_eq!(Vector::filled(2, 3.5).as_slice(), &[3.5, 3.5]);
        assert_eq!(Vector::from_slice(&[1.0]).as_slice(), &[1.0]);
        assert_eq!(Vector::from_vec(vec![2.0]).as_slice(), &[2.0]);
        assert_eq!(
            Vector::from_fn(3, |i| i as f64).as_slice(),
            &[0.0, 1.0, 2.0]
        );
    }

    #[test]
    fn dot_norm_and_scaling() {
        let a = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_inf(), 4.0);
        assert_eq!(a.norm_l1(), 7.0);
        assert_eq!(a.scaled(2.0).as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_component_mul() {
        let mut a = Vector::from_slice(&[1.0, 1.0]);
        let b = Vector::from_slice(&[2.0, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[5.0, 7.0]);
        assert_eq!(a.component_mul(&b).as_slice(), &[10.0, 21.0]);
    }

    #[test]
    fn argmax_argmin() {
        let v = Vector::from_slice(&[1.0, -3.0, 2.5, 0.0]);
        assert_eq!(v.argmax(), Some((2, 2.5)));
        assert_eq!(v.argmin(), Some((1, -3.0)));
        assert_eq!(Vector::zeros(0).argmax(), None);
        assert_eq!(Vector::zeros(0).argmin(), None);
    }

    #[test]
    fn indexing_and_iteration() {
        let mut v = Vector::from_slice(&[1.0, 2.0]);
        v[0] = 9.0;
        assert_eq!(v[0], 9.0);
        let collected: Vector = v.iter().map(|x| x * 2.0).collect();
        assert_eq!(collected.as_slice(), &[18.0, 4.0]);
        let sum: f64 = (&v).into_iter().sum();
        assert_eq!(sum, 11.0);
    }

    #[test]
    fn display_is_not_empty() {
        let v = Vector::from_slice(&[1.0, 2.0]);
        let s = format!("{v}");
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("1.0"));
    }

    #[test]
    fn finite_detection() {
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
        assert!(!Vector::from_slice(&[1.0, f64::NAN]).is_finite());
        assert!(!Vector::from_slice(&[f64::INFINITY]).is_finite());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    proptest! {
        #[test]
        fn prop_dot_is_commutative(a in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
            let n = a.len();
            let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            let va = Vector::from_slice(&a);
            let vb = Vector::from_slice(&b[..n]);
            prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);
        }

        #[test]
        fn prop_triangle_inequality(a in proptest::collection::vec(-1e3f64..1e3, 1..20),
                                    scale in -2.0f64..2.0) {
            let b: Vec<f64> = a.iter().map(|x| x * scale).collect();
            let va = Vector::from_slice(&a);
            let vb = Vector::from_slice(&b);
            prop_assert!((&va + &vb).norm() <= va.norm() + vb.norm() + 1e-9);
        }

        #[test]
        fn prop_scaling_scales_norm(a in proptest::collection::vec(-1e3f64..1e3, 1..20),
                                    s in -10.0f64..10.0) {
            let v = Vector::from_slice(&a);
            prop_assert!((v.scaled(s).norm() - s.abs() * v.norm()).abs() < 1e-6);
        }
    }
}
