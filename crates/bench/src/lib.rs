//! Shared workload definitions for the benchmark harness.
//!
//! The paper's evaluation consists of one table and two figures:
//!
//! * **Table 1** — wall-clock breakdown of the verification procedure for
//!   hidden-layer widths from 10 to 1000 neurons,
//! * **Figure 4** — evolution of the CMA-ES policy search that trains the
//!   path-following controller,
//! * **Figure 5** — the phase portrait of the verified closed loop with the
//!   initial set, the unsafe set, sample trajectories, and the certified
//!   barrier level set.
//!
//! Each figure/table has a Criterion bench (`benches/table1_timing.rs`,
//! `benches/fig4_training.rs`, `benches/fig5_phase_portrait.rs`) built from
//! the helpers in this crate, so the bench targets and the runnable examples
//! agree on every workload parameter.
//!
//! # Examples
//!
//! ```
//! use nncps_bench::{paper_system, fast_config, verify_once};
//!
//! let outcome = verify_once(&paper_system(10), fast_config());
//! assert!(outcome.is_certified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nncps_barrier::{
    ClosedLoopSystem, SafetySpec, VerificationConfig, VerificationOutcome, VerificationRequest,
    VerificationSession, VerificationStats,
};
use nncps_dubins::{reference_controller, ErrorDynamics, Path, TrainingOptions};
use nncps_interval::IntervalBox;

/// The hidden-layer widths reported in Table 1 of the paper.
pub const PAPER_TABLE1_WIDTHS: [usize; 12] = [10, 20, 40, 50, 70, 80, 90, 100, 300, 500, 700, 1000];

/// The subset of Table 1 widths the benches run by default (the full sweep is
/// enabled by setting the environment variable `NNCPS_FULL_TABLE1=1`).
pub const DEFAULT_TABLE1_WIDTHS: [usize; 5] = [10, 20, 50, 80, 100];

/// Returns the widths the Table 1 bench should use, honouring
/// `NNCPS_FULL_TABLE1`.
pub fn table1_widths() -> Vec<usize> {
    if std::env::var("NNCPS_FULL_TABLE1").is_ok_and(|v| v == "1") {
        PAPER_TABLE1_WIDTHS.to_vec()
    } else {
        DEFAULT_TABLE1_WIDTHS.to_vec()
    }
}

/// The safety specification of Section 4.3: `X0 = [-1, 1] × [-π/16, π/16]`,
/// `U` the complement of `[-5, 5] × [-(π/2-ε), π/2-ε]` with `ε = 0.01`.
pub fn paper_spec() -> SafetySpec {
    let eps = 0.01;
    let pi = std::f64::consts::PI;
    SafetySpec::rectangular(
        IntervalBox::from_bounds(&[(-1.0, 1.0), (-pi / 16.0, pi / 16.0)]),
        IntervalBox::from_bounds(&[(-5.0, 5.0), (-(pi / 2.0 - eps), pi / 2.0 - eps)]),
    )
}

/// The closed-loop error-dynamics system of Figure 2 with a controller of the
/// given hidden-layer width.
pub fn paper_system(hidden_neurons: usize) -> ClosedLoopSystem {
    let controller = reference_controller(hidden_neurons);
    let dynamics = ErrorDynamics::new(controller, 1.0);
    ClosedLoopSystem::new(dynamics.symbolic_vector_field(), paper_spec())
}

/// The verification configuration used by the benches and doc tests: the
/// paper's `γ = 10⁻⁶` with a trimmed simulation budget so individual runs
/// stay fast enough to sample repeatedly.
pub fn fast_config() -> VerificationConfig {
    VerificationConfig {
        num_seed_traces: 10,
        max_samples_per_trace: 15,
        sim_duration: 8.0,
        ..VerificationConfig::default()
    }
}

/// The CMA-ES policy-search settings used by the Figure 4 bench: the paper's
/// architecture with a reduced population and generation budget (the paper
/// uses population 152 and up to 50 generations).
pub fn fig4_training_options(generations: usize) -> TrainingOptions {
    TrainingOptions {
        hidden_neurons: 10,
        population: 24,
        max_generations: generations,
        ..TrainingOptions::default()
    }
}

/// The Figure 4 piecewise-linear reference path.
pub fn fig4_path() -> Path {
    Path::figure4_path()
}

/// One cold verification through the session API — the canonical way the
/// benches run the pipeline end to end with no cache reuse between samples
/// (a warm sample would measure memo lookups, not verification).
pub fn verify_once(system: &ClosedLoopSystem, config: VerificationConfig) -> VerificationOutcome {
    VerificationSession::new().verify(&VerificationRequest::over(system).with_config(config).cold())
}

/// Runs one verification of the case study and returns its statistics — one
/// row of Table 1.
pub fn run_table1_row(hidden_neurons: usize) -> (bool, VerificationStats) {
    let system = paper_system(hidden_neurons);
    let outcome = verify_once(&system, fast_config());
    (outcome.is_certified(), outcome.stats().clone())
}

/// Formats one Table 1 row the way the paper reports it.
pub fn format_table1_row(
    hidden_neurons: usize,
    certified: bool,
    stats: &VerificationStats,
) -> String {
    format!(
        "{:>7} | {:>10} | {:>9.3} | {:>11.3} | {:>9.3} | {:>9.3} | {}",
        hidden_neurons,
        stats.generator_iterations,
        stats.avg_lp_time().as_secs_f64(),
        stats.avg_smt_time().as_secs_f64(),
        stats.timings.other().as_secs_f64(),
        stats.timings.total.as_secs_f64(),
        if certified { "safe" } else { "unknown" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_widths_are_a_subset_of_the_paper_widths() {
        for w in DEFAULT_TABLE1_WIDTHS {
            assert!(PAPER_TABLE1_WIDTHS.contains(&w));
        }
    }

    #[test]
    fn paper_system_has_two_states() {
        assert_eq!(paper_system(10).dim(), 2);
    }

    #[test]
    fn table1_row_runs_and_formats() {
        let (certified, stats) = run_table1_row(10);
        assert!(certified);
        let row = format_table1_row(10, certified, &stats);
        assert!(row.contains("safe"));
    }

    #[test]
    fn fig4_settings_use_the_paper_architecture() {
        let options = fig4_training_options(5);
        assert_eq!(options.hidden_neurons, 10);
        assert!(fig4_path().length() > 100.0);
    }
}
