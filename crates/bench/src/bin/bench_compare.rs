//! `bench-compare` — the CI bench-regression comparator.
//!
//! Reads the JSON-lines file the criterion shim writes when `CRITERION_JSON`
//! is set, looks the same benchmark up in a checked-in baseline record
//! (`BENCH_pr4.json`; older `BENCH_pr2.json`-layout records still parse),
//! and fails when the current median per-iteration time regresses beyond
//! the tolerance.  `ci.sh` runs it twice: once for the default headline and
//! once with `--bench substrate/specialize/decrease_query_50/specialized_newton`.
//!
//! ```text
//! CRITERION_JSON=target/bench_current.jsonl \
//!     cargo bench --bench substrate_micro -- substrate/deltasat/decrease_query/50
//! cargo run --release -p nncps_bench --bin bench-compare -- \
//!     target/bench_current.jsonl BENCH_pr4.json
//! ```
//!
//! Defaults: benchmark `substrate/deltasat/decrease_query/50` (the
//! workspace's headline solver bench), tolerance 25%.  Override with
//! `--bench NAME` / `--tolerance PCT` or the `NNCPS_BENCH_TOLERANCE_PCT`
//! environment variable (flag wins).
//!
//! A second mode gates a *speedup within one run* instead of a regression
//! against a baseline: `bench-compare CURRENT.jsonl --speedup SLOW FAST
//! [--min RATIO]` fails unless `median(SLOW) / median(FAST) ≥ RATIO`
//! (default 2).  ci.sh uses it to hold the batched evaluator to its ≥2×
//! per-box headline against the one-at-a-time interpreter.
//!
//! A third mode gates an *overhead within one run*: `bench-compare
//! CURRENT.jsonl --overhead BASE CANDIDATE [--max-pct PCT]` fails unless
//! `min(CANDIDATE) ≤ min(BASE) × (1 + PCT/100)` (default 2%).  Best-case
//! sample times are compared — unlike medians they converge with sample
//! count on a noisy shared host, which a single-digit-percent ceiling
//! needs.  ci.sh uses it to hold the budget-governed solver to ≤2% over
//! the ungoverned headline measured back-to-back in the same process.
//!
//! When the current benchmark is a new lane of an old headline, pass
//! `--baseline-bench NAME` to look a *different* name up in the baseline
//! record (e.g. gate `substrate/govern/decrease_query_50/governed` against
//! the record of `substrate/deltasat/decrease_query/50`).

use std::process::ExitCode;

use nncps_scenarios::Json;

const DEFAULT_BENCH: &str = "substrate/deltasat/decrease_query/50";
const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

const DEFAULT_MIN_SPEEDUP: f64 = 2.0;
const DEFAULT_MAX_OVERHEAD_PCT: f64 = 2.0;

const USAGE: &str = "usage: bench-compare CURRENT.jsonl BASELINE.json [--bench NAME] [--baseline-bench NAME] [--tolerance PCT]\n       bench-compare CURRENT.jsonl --speedup SLOW FAST [--min RATIO]\n       bench-compare CURRENT.jsonl --overhead BASE CANDIDATE [--max-pct PCT]";

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run() {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("bench-compare: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let mut positional = Vec::new();
    let mut bench = DEFAULT_BENCH.to_string();
    let mut tolerance_pct = match std::env::var("NNCPS_BENCH_TOLERANCE_PCT") {
        Ok(value) => value
            .parse::<f64>()
            .map_err(|e| format!("invalid NNCPS_BENCH_TOLERANCE_PCT: {e}"))?,
        Err(_) => DEFAULT_TOLERANCE_PCT,
    };
    let mut speedup: Option<(String, String)> = None;
    let mut min_speedup = DEFAULT_MIN_SPEEDUP;
    let mut overhead: Option<(String, String)> = None;
    let mut max_overhead_pct = DEFAULT_MAX_OVERHEAD_PCT;
    let mut baseline_bench: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--bench" => bench = argv.next().ok_or_else(|| USAGE.to_string())?,
            "--baseline-bench" => {
                baseline_bench = Some(argv.next().ok_or_else(|| USAGE.to_string())?)
            }
            "--tolerance" => {
                tolerance_pct = argv
                    .next()
                    .ok_or_else(|| USAGE.to_string())?
                    .parse()
                    .map_err(|e| format!("invalid --tolerance: {e}"))?
            }
            "--speedup" => {
                let slow = argv.next().ok_or_else(|| USAGE.to_string())?;
                let fast = argv.next().ok_or_else(|| USAGE.to_string())?;
                speedup = Some((slow, fast));
            }
            "--min" => {
                min_speedup = argv
                    .next()
                    .ok_or_else(|| USAGE.to_string())?
                    .parse()
                    .map_err(|e| format!("invalid --min: {e}"))?
            }
            "--overhead" => {
                let base = argv.next().ok_or_else(|| USAGE.to_string())?;
                let candidate = argv.next().ok_or_else(|| USAGE.to_string())?;
                overhead = Some((base, candidate));
            }
            "--max-pct" => {
                max_overhead_pct = argv
                    .next()
                    .ok_or_else(|| USAGE.to_string())?
                    .parse()
                    .map_err(|e| format!("invalid --max-pct: {e}"))?
            }
            other => positional.push(other.to_string()),
        }
    }
    if let Some((base, candidate)) = overhead {
        let [current_path] = positional.as_slice() else {
            return Err(USAGE.to_string());
        };
        if !(0.0..1000.0).contains(&max_overhead_pct) {
            return Err(format!("maximum overhead {max_overhead_pct}% is not sane"));
        }
        let base_s = read_current_stat(current_path, &base, "min_s")?;
        let candidate_s = read_current_stat(current_path, &candidate, "min_s")?;
        let overhead_pct = (candidate_s / base_s - 1.0) * 100.0;
        let summary = format!(
            "`{candidate}` best case runs at {overhead_pct:+.2}% vs `{base}` \
             ({:.3} ms vs {:.3} ms, ceiling +{max_overhead_pct}%)",
            candidate_s * 1e3,
            base_s * 1e3,
        );
        return if overhead_pct > max_overhead_pct {
            Err(format!("OVERHEAD EXCEEDED: {summary}"))
        } else {
            Ok(format!("bench-compare: OK: {summary}"))
        };
    }
    if let Some((slow, fast)) = speedup {
        let [current_path] = positional.as_slice() else {
            return Err(USAGE.to_string());
        };
        if !(1.0..1000.0).contains(&min_speedup) {
            return Err(format!("minimum speedup {min_speedup}x is not sane"));
        }
        let slow_s = read_current_median(current_path, &slow)?;
        let fast_s = read_current_median(current_path, &fast)?;
        let ratio = slow_s / fast_s;
        let summary = format!(
            "`{fast}` runs {ratio:.2}x faster than `{slow}` \
             ({:.3} ms vs {:.3} ms, floor {min_speedup}x)",
            fast_s * 1e3,
            slow_s * 1e3,
        );
        return if ratio < min_speedup {
            Err(format!("SPEEDUP LOST: {summary}"))
        } else {
            Ok(format!("bench-compare: OK: {summary}"))
        };
    }
    let [current_path, baseline_path] = positional.as_slice() else {
        return Err(USAGE.to_string());
    };
    if !(0.0..1000.0).contains(&tolerance_pct) {
        return Err(format!("tolerance {tolerance_pct}% is not sane"));
    }

    let current_s = read_current_median(current_path, &bench)?;
    let baseline_name = baseline_bench.as_deref().unwrap_or(&bench);
    let baseline_s = read_baseline_median(baseline_path, baseline_name)?;

    let limit_s = baseline_s * (1.0 + tolerance_pct / 100.0);
    let ratio = current_s / baseline_s;
    let summary = format!(
        "`{bench}`: current median {:.3} ms vs baseline {:.3} ms ({}{:.1}% {}, limit +{tolerance_pct}%)",
        current_s * 1e3,
        baseline_s * 1e3,
        if ratio >= 1.0 { "+" } else { "-" },
        (ratio - 1.0).abs() * 100.0,
        if ratio >= 1.0 { "slower" } else { "faster" },
    );
    if current_s > limit_s {
        Err(format!("REGRESSION: {summary}"))
    } else {
        Ok(format!("bench-compare: OK: {summary}"))
    }
}

/// Reads the median of `bench` from the shim's JSON-lines output.  When a
/// benchmark was sampled several times (e.g. the stage is re-run without
/// clearing the file), the **last** record wins.
fn read_current_median(path: &str, bench: &str) -> Result<f64, String> {
    read_current_stat(path, bench, "median_s")
}

/// Reads one statistic (`median_s`, `min_s`, ...) of `bench` from the
/// shim's JSON-lines output; the last record for the benchmark wins.
fn read_current_stat(path: &str, bench: &str, stat: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read current results {path}: {e}"))?;
    let mut found = None;
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record =
            Json::parse(line).map_err(|e| format!("{path}:{}: invalid record: {e}", index + 1))?;
        if record.get("bench").and_then(Json::as_str) == Some(bench) {
            found = Some(
                record
                    .get(stat)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{path}:{}: record has no {stat}", index + 1))?,
            );
        }
    }
    found.ok_or_else(|| {
        format!(
            "no record for `{bench}` in {path} — did the bench run with \
             CRITERION_JSON set and a filter matching it?"
        )
    })
}

/// Looks `bench` up in a checked-in baseline record.  The `results` array
/// (every `BENCH_*.json` since PR 4) is scanned for an entry whose `bench`
/// matches and its `median_s` is the baseline; records that predate that
/// layout (`BENCH_pr2.json`) fall back to the `seed_comparison` array's
/// `pr2_median_s` column.
fn read_baseline_median(path: &str, bench: &str) -> Result<f64, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(entries) = json.get("results").and_then(Json::as_array) {
        for entry in entries {
            if entry.get("bench").and_then(Json::as_str) == Some(bench) {
                return entry
                    .get("median_s")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{path}: entry for `{bench}` has no median_s"));
            }
        }
    }
    let entries = json
        .get("seed_comparison")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path} has neither a results nor a seed_comparison array"))?;
    for entry in entries {
        if entry.get("bench").and_then(Json::as_str) == Some(bench) {
            return entry
                .get("pr2_median_s")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: entry for `{bench}` has no pr2_median_s"));
        }
    }
    Err(format!("{path} has no baseline entry for `{bench}`"))
}
