//! Table 1: timing of the safety-verification procedure versus the number of
//! neurons in the controller's hidden layer.
//!
//! Each Criterion benchmark measures one full run of the Figure 1 procedure
//! (seed simulation, LP synthesis, δ-SAT decrease check, level-set selection)
//! for one controller width.  Before the measurements, the harness prints one
//! Table-1-style row per width so the reproduced table can be read directly
//! off the bench output.
//!
//! By default only a subset of the paper's widths is run; set
//! `NNCPS_FULL_TABLE1=1` to sweep all twelve widths (10 … 1000 neurons).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nncps_bench::{
    fast_config, format_table1_row, paper_system, run_table1_row, table1_widths, verify_once,
};

fn table1(c: &mut Criterion) {
    let widths = table1_widths();

    // Print the reproduced table once (the paper's Table 1 columns).
    eprintln!();
    eprintln!("Table 1 — safety-verification timing per controller width");
    eprintln!(
        "{:>7} | {:>10} | {:>9} | {:>11} | {:>9} | {:>9} | result",
        "neurons", "iterations", "LP (s)", "SMT (5) (s)", "other (s)", "total (s)"
    );
    eprintln!("{}", "-".repeat(80));
    for &width in &widths {
        let (certified, stats) = run_table1_row(width);
        eprintln!("{}", format_table1_row(width, certified, &stats));
    }
    eprintln!();

    let mut group = c.benchmark_group("table1/verify");
    group.sample_size(10);
    for &width in &widths {
        // Building the symbolic closed loop is part of the setup, not the
        // measured procedure (the paper's timings start from the flowchart).
        let system = paper_system(width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &system, |b, system| {
            b.iter(|| {
                let outcome = verify_once(system, fast_config());
                assert!(outcome.is_certified(), "width {width} failed: {outcome}");
                outcome.stats().timings.total
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(8));
    targets = table1
}
criterion_main!(benches);
