//! Figure 4: evolution of the NN controller during CMA-ES policy search.
//!
//! The paper trains a 2 → 10 → 1 `tansig` controller with CMA-ES on a
//! piecewise-linear reference path and shows four snapshots of the resulting
//! closed-loop trajectory.  The bench harness prints the per-generation cost
//! series (the quantitative content behind the figure) and measures the cost
//! of a single CMA-ES generation (one `ask`/rollout/`tell` cycle) as well as
//! a short multi-generation search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nncps_bench::{fig4_path, fig4_training_options};
use nncps_cmaes::{seeded_rng, CmaEs, CmaesParams};
use nncps_dubins::{train_controller, TrainingEnv, TrainingOptions};

fn print_training_series() {
    let options = fig4_training_options(15);
    let outcome = train_controller(fig4_path(), &options);
    eprintln!();
    eprintln!("Figure 4 — CMA-ES policy-search cost per generation");
    eprintln!("generation,best_cost,mean_cost,sigma");
    for generation in &outcome.history {
        eprintln!(
            "{},{:.3},{:.3},{:.5}",
            generation.index, generation.best_fitness, generation.mean_fitness, generation.sigma
        );
    }
    let env = TrainingEnv::new(fig4_path(), &options);
    let (trace, cost) = env.rollout(&outcome.controller);
    let end = fig4_path().end();
    let last = trace.final_state();
    let terminal = ((last[0] - end.0).powi(2) + (last[1] - end.1).powi(2)).sqrt();
    eprintln!("final rollout cost J = {cost:.3}, terminal position error = {terminal:.3} m");
    eprintln!();
}

fn fig4(c: &mut Criterion) {
    print_training_series();

    let options = fig4_training_options(3);
    let env = TrainingEnv::new(fig4_path(), &options);

    // One ask/evaluate/tell cycle of the policy search.
    c.bench_function("fig4/cmaes_generation", |b| {
        let params = CmaesParams::new(env.num_params()).with_population_size(options.population);
        b.iter(|| {
            let mut rng = seeded_rng(7);
            let mut cmaes = CmaEs::new(vec![0.0; env.num_params()], 0.5, params.clone());
            let candidates = cmaes.ask(&mut rng);
            let fitnesses: Vec<f64> = candidates
                .iter()
                .map(|params| env.cost_of_params(params))
                .collect();
            cmaes.tell(&candidates, &fitnesses);
            cmaes.best().map(|(_, f)| f)
        });
    });

    // One full rollout of the closed loop along the Figure 4 path.
    c.bench_function("fig4/rollout", |b| {
        let controller = env.controller_from_params(&vec![0.1; env.num_params()]);
        b.iter(|| env.rollout(&controller).1);
    });

    // A short end-to-end policy search (3 generations).
    let mut group = c.benchmark_group("fig4/policy_search");
    group.sample_size(10);
    group.bench_function("3_generations", |b| {
        b.iter(|| train_controller(fig4_path(), &options).best_cost);
    });
    group.finish();

    // Rollout-evaluation scaling: the same policy search with the candidate
    // rollouts evaluated sequentially versus on all available cores (the
    // `parallel` feature's headline win — one rollout per candidate, all
    // independent).  The trained controller is identical in both cases.
    let mut group = c.benchmark_group("fig4/policy_search_threads");
    group.sample_size(10);
    for &threads in &[1usize, 0] {
        let label = if threads == 1 {
            "1".to_string()
        } else {
            format!("{}_cores", nncps_sim::effective_threads(0))
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &threads,
            |b, &threads| {
                let options = TrainingOptions {
                    threads,
                    ..fig4_training_options(3)
                };
                b.iter(|| train_controller(fig4_path(), &options).best_cost);
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(10));
    targets = fig4
}
criterion_main!(benches);
