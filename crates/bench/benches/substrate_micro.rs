//! Microbenchmarks of the substrates the verification pipeline is built on:
//! the LP solver, the δ-SAT solver, the symbolic expression layer, the neural
//! network forward pass, and the ODE integrators.  These locate where the
//! Table 1 time goes as the controller grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nncps_deltasat::{
    contract_clause, CompiledClause, CompiledFormula, Constraint, DeltaSolver, Formula,
};
use nncps_dubins::{reference_controller, ErrorDynamics};
use nncps_expr::{AllocatedTape, BatchScratch, Expr, Tape, DEFAULT_REGISTERS};
use nncps_interval::IntervalBox;
use nncps_lp::{Comparison, LpProblem};
use nncps_sim::{Integrator, Simulator};

/// The Lie derivative of the Table-1-style quadratic candidate along the
/// width-`width` closed loop — the expression the decrease query (5) hands
/// to the solver.
fn lie_derivative(width: usize) -> Expr {
    let x = Expr::var(0);
    let y = Expr::var(1);
    let dynamics = ErrorDynamics::new(reference_controller(width), 1.0);
    let field = dynamics.symbolic_vector_field();
    let w = (x.clone().powi(2) * 0.02 + (x.clone() * y.clone()) * 0.01 + y.clone().powi(2) * 0.13)
        .simplified();
    (w.differentiate(0) * field[0].clone() + w.differentiate(1) * field[1].clone()).simplified()
}

fn lp_bench(c: &mut Criterion) {
    // A generator-function-shaped LP: 7 variables (quadratic template in 2D
    // plus the margin), `rows` trace constraints.
    let mut group = c.benchmark_group("substrate/lp_solve");
    group.sample_size(10);
    for rows in [100usize, 400, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            let mut lp = LpProblem::new(7);
            lp.set_objective(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -1.0]);
            for k in 0..rows {
                let t = k as f64 / rows as f64;
                let x = 4.0 * (1.0 - t) * (2.0 * std::f64::consts::PI * t).cos();
                let y = 1.4 * (1.0 - t) * (2.0 * std::f64::consts::PI * t).sin();
                // Positivity at (x, y).
                lp.add_constraint(&[x * x, x * y, y * y, x, y, 1.0, 0.0], Comparison::Ge, 1e-6);
                // Decrease toward a slightly contracted point.
                let (nx, ny) = (0.98 * x, 0.97 * y);
                lp.add_constraint(
                    &[
                        nx * nx - x * x,
                        nx * ny - x * y,
                        ny * ny - y * y,
                        nx - x,
                        ny - y,
                        0.0,
                        0.05,
                    ],
                    Comparison::Le,
                    -1e-6,
                );
            }
            lp.add_constraint(&[25.0, 7.8, 2.4, 5.0, 1.56, 1.0, 0.0], Comparison::Eq, 1.0);
            b.iter(|| lp.solve().map(|s| s.objective()));
        });
    }
    group.finish();
}

fn deltasat_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/deltasat");
    group.sample_size(20);
    let x = Expr::var(0);
    let y = Expr::var(1);
    let domain = IntervalBox::from_bounds(&[(-5.0, 5.0), (-1.6, 1.6)]);

    // An UNSAT polynomial/trigonometric query (full branch-and-prune pass).
    let unsat = Formula::atom(Constraint::ge(
        (x.clone().sin() * 2.0 + y.clone().powi(2)).simplified(),
        5.0,
    ));
    group.bench_function("unsat_poly_trig", |b| {
        let solver = DeltaSolver::new(1e-4);
        b.iter(|| solver.solve(&unsat, &domain));
    });

    // The paper-style decrease query (below, width 50) with the box stack
    // worked in parallel batches: UNSAT queries must visit the whole search
    // tree, so they scale with the worker-thread count on multi-core hosts
    // (δ-SAT queries return at the first witness and benefit less).
    {
        let dynamics = ErrorDynamics::new(reference_controller(50), 1.0);
        let field = dynamics.symbolic_vector_field();
        let w =
            (x.clone().powi(2) * 0.02 + (x.clone() * y.clone()) * 0.01 + y.clone().powi(2) * 0.13)
                .simplified();
        let lie = (w.differentiate(0) * field[0].clone() + w.differentiate(1) * field[1].clone())
            .simplified();
        let query = Formula::atom(Constraint::ge(lie, -1e-6));
        for &threads in &[1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new("decrease_query_50_threads", threads),
                &threads,
                |b, &threads| {
                    let solver = DeltaSolver::new(1e-4).with_threads(threads);
                    b.iter(|| solver.solve(&query, &domain));
                },
            );
        }
    }

    // The paper-style decrease query for controllers of increasing width.
    for width in [10usize, 50] {
        let query = Formula::atom(Constraint::ge(lie_derivative(width), -1e-6));
        group.bench_with_input(
            BenchmarkId::new("decrease_query", width),
            &query,
            |b, query| {
                let solver = DeltaSolver::new(1e-4);
                b.iter(|| solver.solve(query, &domain));
            },
        );
    }
    group.finish();
}

/// Head-to-head microbenches of the compiled evaluation layer against the
/// tree-walking reference on the width-50 decrease-query expression:
/// interval evaluation, clause contraction (HC4), and the full δ-SAT solve.
fn tape_vs_tree_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/tape_vs_tree");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    let lie = lie_derivative(50);
    let constraint = Constraint::ge(lie.clone(), -1e-6);
    let clause = vec![constraint.clone()];
    let compiled = CompiledClause::compile(&clause);
    let tape = Tape::compile(&lie);
    let domain = IntervalBox::from_bounds(&[(-5.0, 5.0), (-1.6, 1.6)]);

    group.bench_function("eval_box/tree", |b| {
        b.iter(|| black_box(lie.eval_box(&domain)));
    });
    group.bench_function("eval_box/tape", |b| {
        let mut slots = Vec::new();
        b.iter(|| {
            tape.eval_interval_into(&domain, &mut slots);
            black_box(slots[tape.root_slot(0)])
        });
    });

    group.bench_function("hc4_contract/tree", |b| {
        b.iter(|| {
            let mut region = domain.clone();
            black_box(contract_clause(&clause, &mut region, 4))
        });
    });
    group.bench_function("hc4_contract/tape", |b| {
        let mut scratch = compiled.scratch();
        let mut region = domain.clone();
        b.iter(|| {
            region.clone_from(&domain);
            black_box(compiled.contract(&mut region, 4, &mut scratch))
        });
    });

    let query = Formula::atom(constraint);
    group.bench_function("decrease_query_50/tree", |b| {
        let solver = DeltaSolver::new(1e-4).with_tree_evaluator();
        b.iter(|| solver.solve(&query, &domain));
    });
    // The steady-state path the pipeline runs: compiled once, solved many
    // times (solve() would re-lower the query on every iteration).
    group.bench_function("decrease_query_50/tape", |b| {
        let solver = DeltaSolver::new(1e-4);
        let compiled = CompiledFormula::compile(&query);
        b.iter(|| solver.solve_compiled(&compiled, &domain));
    });
    group.finish();
}

/// A width-`width` clamped ("hardtanh") controller exported symbolically:
/// each neuron is `max(min(a·x + b·y + d, 1), −1)`.  This is the
/// `min`/`max`-rich workload region specialization thrives on — on regions
/// away from the switching surfaces the saturated neurons decide their
/// choices and their affine cones die.
fn clamped_lie_derivative(width: usize) -> Expr {
    let x = Expr::var(0);
    let y = Expr::var(1);
    let mut u = Expr::constant(0.0);
    for j in 0..width {
        let t = j as f64 / width as f64;
        let z =
            x.clone() * (2.0 * (t - 0.5)) + y.clone() * (1.5 * (0.5 - t).abs() + 0.1) + (t - 0.3);
        let neuron = z.min(Expr::constant(1.0)).max(Expr::constant(-1.0));
        u = u + neuron * (0.8 * (1.0 - t));
    }
    let w_dx = x.clone() * 0.04 + y.clone() * 0.01;
    let w_dy = x.clone() * 0.01 + y.clone() * 0.26;
    let f0 = y.clone();
    let f1 = u - y.clone() * 0.5;
    (w_dx * f0 + w_dy * f1).simplified()
}

/// Microbenches of the region-specialization layer: what one specialization
/// pass costs, what a shortened view saves per sweep, and the end-to-end
/// effect of specialization and derivative-guided cuts on the headline
/// decrease query.
fn specialize_bench(c: &mut Criterion) {
    use nncps_expr::SpecializeScratch;

    let mut group = c.benchmark_group("substrate/specialize");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    let clamped = clamped_lie_derivative(50);
    let tape = Tape::compile(&clamped);
    // A region away from the clamp switching surfaces: most neurons are
    // saturated, so their choices are decided and the view shrinks hard.
    let region = IntervalBox::from_bounds(&[(3.0, 3.5), (1.0, 1.25)]);
    let mut scratch = SpecializeScratch::default();
    let view = tape.specialize(&region, &mut scratch);
    assert!(
        view.len() < tape.num_slots(),
        "saturated clamps must shorten the tape ({} of {} slots left)",
        view.len(),
        tape.num_slots()
    );

    // Cost of one specialization pass (forward values precomputed, the
    // output view pooled — exactly the solver's steady-state shape).
    group.bench_function("derive_view", |b| {
        let mut slots = Vec::new();
        tape.eval_interval_into(&region, &mut slots);
        let keep = vec![true; tape.num_roots()];
        let mut out = nncps_expr::TapeView::default();
        b.iter(|| {
            black_box(tape.specialize_from_slots(&slots, &keep, &mut scratch, &mut out));
            black_box(out.len())
        });
    });

    group.bench_function("eval_box/full", |b| {
        let mut slots = Vec::new();
        b.iter(|| {
            tape.eval_interval_into(&region, &mut slots);
            black_box(slots[tape.root_slot(0)])
        });
    });
    group.bench_function("eval_box/specialized", |b| {
        let mut slots = Vec::new();
        let root = view.root_slot(0).expect("root kept");
        b.iter(|| {
            view.eval_interval_into(&tape, &region, &mut slots);
            black_box(slots[root])
        });
    });

    // The headline decrease query (width-50 tanh controller), solved with
    // the evaluation-layer accelerations peeled apart: full tape only,
    // + region specialization, + derivative-guided cuts (the default).
    let query = Formula::atom(Constraint::ge(lie_derivative(50), -1e-6));
    let compiled = CompiledFormula::compile(&query);
    compiled.ensure_gradients();
    let domain = IntervalBox::from_bounds(&[(-5.0, 5.0), (-1.6, 1.6)]);
    let configs: [(&str, DeltaSolver); 3] = [
        (
            "decrease_query_50/full",
            DeltaSolver::new(1e-4)
                .with_tape_specialization(false)
                .with_newton_cuts(false),
        ),
        (
            "decrease_query_50/specialized",
            DeltaSolver::new(1e-4).with_newton_cuts(false),
        ),
        (
            "decrease_query_50/specialized_newton",
            DeltaSolver::new(1e-4),
        ),
    ];
    for (name, solver) in configs {
        group.bench_function(name, |b| {
            b.iter(|| solver.solve_compiled(&compiled, &domain));
        });
    }

    // The same ablation on the clamped controller, where specialization has
    // choices to decide on every descent.
    let clamped_query = Formula::atom(Constraint::ge(clamped_lie_derivative(50), 0.05));
    let clamped_compiled = CompiledFormula::compile(&clamped_query);
    clamped_compiled.ensure_gradients();
    for (name, solver) in [
        (
            "clamped_query_50/full",
            DeltaSolver::new(1e-4)
                .with_tape_specialization(false)
                .with_newton_cuts(false),
        ),
        (
            "clamped_query_50/specialized",
            DeltaSolver::new(1e-4).with_newton_cuts(false),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| solver.solve_compiled(&clamped_compiled, &domain));
        });
    }
    group.finish();
}

/// A depth-`depth` ReLU ladder — the shape of a compiled NN controller after
/// symbolic export.  Unit-scale weights keep the signal alive through all
/// layers, so interval boxes away from the origin decide their `max(·, 0)`
/// branches one region at a time — the workload choice-trace-driven
/// respecialization exists for.
fn deep_relu_chain(depth: usize) -> Expr {
    let x = Expr::var(0);
    let y = Expr::var(1);
    let mut out = x * 0.9 + y * 0.1;
    for i in 0..depth {
        let w = 1.0 + 0.01 * (i % 5) as f64;
        let b = 0.01 * (i % 3) as f64;
        out = (out * w + b).max(Expr::constant(0.0)) - 0.01;
    }
    out
}

/// A depth-`depth` clipped-ReLU ("ReLU1") ladder with skip accumulation:
/// every layer gates `min(max(1.1·out + c, 0), 1)` and contributes to a
/// running sum, so every gate stays live at the root.  The branches decide
/// *progressively* with region size — on a region with positive lower bound
/// the `max(·, 0)` gates decide immediately, and the growing lower bound
/// saturates the `min(·, 1)` clips one layer at a time — so a specialization
/// descent shortens the view step by step instead of all at once, the shape
/// a real saturating controller produces.
fn clipped_relu_ladder(depth: usize) -> Expr {
    let x = Expr::var(0);
    let y = Expr::var(1);
    let mut out = x.clone() * 0.45 + y.clone() * 0.05;
    let mut acc = Expr::constant(0.0);
    for i in 0..depth {
        let c = 0.01 + 0.001 * (i % 3) as f64;
        // Input taps widen the pre-activation cone; the whole cone dies the
        // moment the layer's clip saturates.
        let z = out * 1.1
            + x.clone() * (0.015 + 0.001 * (i % 4) as f64)
            + y.clone() * (0.004 + 0.001 * (i % 2) as f64)
            + c;
        let gate = z.max(Expr::constant(0.0)).min(Expr::constant(1.0));
        // Tap the trunk every fourth layer: untapped decided layers reduce
        // to pure aliases and vanish from the specialized view entirely.
        if i % 4 == 0 {
            acc = acc + gate.clone() * (0.5 + 0.01 * (i % 7) as f64);
        }
        out = gate;
    }
    acc + out
}

/// Choice-trace-driven respecialization against the full three-pass
/// derivation it replaced.  `rederive` is what every descent step used to
/// cost: decide/mark/emit over the whole parent program from fresh interval
/// enclosures.  `delta` is the new steady-state step: the recorded choice
/// trace of the sweep the solver ran anyway, one delta check over the open
/// choices, and a single emit pass over the (already shortened) parent view.
/// `delta_noop` is the no-new-decisions case — the delta check alone, which
/// is what repeated descents through an already-specialized region pay.
/// ci.sh gates `delta` at >= 2x over `rederive`.
fn choice_spec_bench(c: &mut Criterion) {
    use nncps_expr::{Choice, ChoiceAnalysis, SpecializeScratch, TapeView};

    let mut group = c.benchmark_group("substrate/choice_spec");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    let expr = clipped_relu_ladder(96);
    let tape = Tape::compile(&expr);
    let analysis = ChoiceAnalysis::analyze(&tape);
    let keep = vec![true; tape.num_roots()];
    let mut scratch = SpecializeScratch::default();

    // The parent region decides the early `max` gates and the deep saturated
    // tail but leaves the mid-ladder `min` clips open — a mid-descent view,
    // already much shorter than the tape.  The child is a bisection-style
    // sub-region whose higher lower bound saturates the remaining clips, so
    // the recorded trace triggers a real emit pass.
    let parent_region = IntervalBox::from_bounds(&[(1.0, 4.0), (0.0, 1.0)]);
    let child_region = IntervalBox::from_bounds(&[(2.5, 4.0), (0.0, 1.0)]);
    let view = tape.specialize(&parent_region, &mut scratch);
    assert!(
        view.num_open_choices() > 0,
        "the parent region must leave choices open"
    );
    assert!(
        view.len() * 2 < tape.num_slots(),
        "the parent view must be mid-descent short ({} of {} slots)",
        view.len(),
        tape.num_slots()
    );

    // The solver's steady state: by the time respecialization runs, the
    // forward sweep over the child (and its choice trace) already exists.
    let mut slots = Vec::new();
    let mut choices = vec![Choice::Both; tape.num_choices()];
    view.eval_interval_extend_into_recording(
        &tape,
        &child_region,
        &mut slots,
        view.len(),
        &mut choices,
    );
    let mut full_slots = Vec::new();
    tape.eval_interval_into(&child_region, &mut full_slots);
    let mut parent_slots = Vec::new();
    let mut parent_choices = vec![Choice::Both; tape.num_choices()];
    view.eval_interval_extend_into_recording(
        &tape,
        &parent_region,
        &mut parent_slots,
        view.len(),
        &mut parent_choices,
    );

    {
        // Sanity: the child trace triggers a real emit pass and shortens the
        // view; the parent's own trace takes the early exit.
        let mut out = TapeView::default();
        assert!(view.respecialize_into(
            &tape,
            &analysis,
            &slots,
            &choices,
            &keep,
            &mut scratch,
            &mut out
        ));
        assert!(out.len() < view.len(), "the negative cone must specialize");
        assert!(!view.respecialize_into(
            &tape,
            &analysis,
            &parent_slots,
            &parent_choices,
            &keep,
            &mut scratch,
            &mut out
        ));
    }

    group.bench_function("deep_relu/rederive", |b| {
        let mut out = TapeView::default();
        b.iter(|| {
            black_box(tape.specialize_from_slots(&full_slots, &keep, &mut scratch, &mut out));
            black_box(out.len())
        });
    });
    group.bench_function("deep_relu/delta", |b| {
        let mut out = TapeView::default();
        b.iter(|| {
            black_box(view.respecialize_into(
                &tape,
                &analysis,
                &slots,
                &choices,
                &keep,
                &mut scratch,
                &mut out,
            ));
            black_box(out.len())
        });
    });
    group.bench_function("deep_relu/delta_noop", |b| {
        let mut out = TapeView::default();
        b.iter(|| {
            black_box(view.respecialize_into(
                &tape,
                &analysis,
                &parent_slots,
                &parent_choices,
                &keep,
                &mut scratch,
                &mut out,
            ))
        });
    });

    // End-to-end: the deep ReLU decrease-style query from the solver's
    // bit-identity test, with specialization on (the default path the
    // choice traces accelerate) and off.
    let query = Formula::atom(Constraint::ge(deep_relu_chain(24), 0.4));
    let compiled = CompiledFormula::compile(&query);
    let domain = IntervalBox::from_bounds(&[(-1.5, 1.5), (-1.5, 1.5)]);
    for (name, solver) in [
        (
            "deep_relu_query/specialized",
            DeltaSolver::new(1e-4).with_newton_cuts(false),
        ),
        (
            "deep_relu_query/full",
            DeltaSolver::new(1e-4)
                .with_tape_specialization(false)
                .with_newton_cuts(false),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| solver.solve_compiled(&compiled, &domain));
        });
    }
    group.finish();
}

/// Microbenches of the batched SIMD evaluation layer: per-box cost of the
/// one-at-a-time tape interpreter against 4- and 8-lane batches over the
/// register-allocated tape (the ≥2× headline this PR claims), and the
/// end-to-end effect of batched sibling evaluation on the headline solver
/// query and the warm-start family sweep.
fn batched_eval_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/batched_eval");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    let domain = IntervalBox::from_bounds(&[(-5.0, 5.0), (-1.6, 1.6)]);
    // Eight sibling sub-boxes, bisection-style — the box population the
    // δ-SAT search actually evaluates.
    let boxes: Vec<IntervalBox> = (0..8)
        .map(|k| {
            let bounds: Vec<(f64, f64)> = domain
                .intervals()
                .iter()
                .enumerate()
                .map(|(d, iv)| {
                    let step = iv.width() / 8.0;
                    let lo = iv.lo() + step * (((k + d) % 8) as f64);
                    (lo, lo + step)
                })
                .collect();
            IntervalBox::from_bounds(&bounds)
        })
        .collect();
    let lanes: Vec<&IntervalBox> = boxes.iter().collect();

    // Per-box cost on two controller families: the clamped (`min`/`max`
    // affine) width-50 controller, where instruction dispatch dominates and
    // batching amortises it, and the tanh width-50 controller, where the
    // transcendental kernels dominate per lane and bound the gain.  All
    // variants evaluate the same eight boxes per iteration, so the medians
    // are directly comparable per box; ci.sh gates the clamped lanes4
    // variant at >= 2x over scalar.
    for (label, expr) in [
        ("per_box", clamped_lie_derivative(50)),
        ("per_box_tanh", lie_derivative(50)),
    ] {
        let tape = Tape::compile(&expr);
        let alloc = AllocatedTape::from_tape(&tape, DEFAULT_REGISTERS);
        group.bench_function(format!("{label}/scalar"), |b| {
            let mut slots = Vec::new();
            b.iter(|| {
                for region in &boxes {
                    tape.eval_interval_into(region, &mut slots);
                    black_box(slots[tape.root_slot(0)]);
                }
            });
        });
        group.bench_function(format!("{label}/lanes4"), |b| {
            let mut scratch = BatchScratch::<4>::default();
            let mut roots = Vec::new();
            b.iter(|| {
                for chunk in lanes.chunks(4) {
                    alloc.eval_interval_batch(&tape, chunk, &mut scratch, &mut roots);
                    black_box(roots[0]);
                }
            });
        });
        group.bench_function(format!("{label}/lanes8"), |b| {
            let mut scratch = BatchScratch::<8>::default();
            let mut roots = Vec::new();
            b.iter(|| {
                alloc.eval_interval_batch(&tape, &lanes, &mut scratch, &mut roots);
                black_box(roots[0]);
            });
        });
    }

    // The headline decrease query with batched sibling evaluation on
    // (the default) and off — same search tree, different evaluation cost.
    let query = Formula::atom(Constraint::ge(lie_derivative(50), -1e-6));
    let compiled = CompiledFormula::compile(&query);
    compiled.ensure_gradients();
    for (name, solver) in [
        ("decrease_query_50/batched", DeltaSolver::new(1e-4)),
        (
            "decrease_query_50/scalar",
            DeltaSolver::new(1e-4).with_batched_evaluation(false),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| solver.solve_compiled(&compiled, &domain));
        });
    }

    // The warm-start CI family sweep under batched evaluation (the scenario
    // configs default `smt_batched_evaluation` on, so this is the sweep
    // engine's production path; tracked against BENCH_pr6.json).
    {
        use nncps_scenarios::{builtin_families, run_sweep, Family, SweepOptions};
        let family: Vec<Family> = builtin_families()
            .into_iter()
            .filter(|f| f.name() == "linear-ci-grid")
            .collect();
        assert_eq!(family.len(), 1, "the CI family exists");
        group.bench_function("family_warm_24", |b| {
            b.iter(|| {
                let report = run_sweep(
                    &family,
                    &SweepOptions {
                        threads: 1,
                        warm_start: true,
                        ..SweepOptions::default()
                    },
                )
                .expect("the CI family expands");
                black_box(report.results.len())
            });
        });
    }
    group.finish();
}

fn nn_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/nn");
    for width in [10usize, 100, 1000] {
        let network = reference_controller(width);
        group.bench_with_input(
            BenchmarkId::new("forward", width),
            &network,
            |b, network| b.iter(|| network.forward(&[1.2, -0.4])[0]),
        );
    }
    let network = reference_controller(100);
    group.bench_function("symbolic_export_100", |b| {
        b.iter(|| {
            network
                .forward_symbolic(&[Expr::var(0), Expr::var(1)])
                .len()
        });
    });
    group.finish();
}

fn sim_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/sim");
    let dynamics = ErrorDynamics::new(reference_controller(10), 1.0);
    for (label, integrator) in [
        ("euler", Integrator::Euler),
        ("rk4", Integrator::RungeKutta4),
    ] {
        group.bench_with_input(
            BenchmarkId::new("closed_loop_10s", label),
            &integrator,
            |b, &integrator| {
                let simulator = Simulator::new(integrator, 0.05, 10.0);
                b.iter(|| simulator.simulate(&dynamics, &[0.9, 0.15]).len());
            },
        );
    }
    group.finish();
}

fn family_sweep_bench(c: &mut Criterion) {
    use nncps_scenarios::{builtin_families, run_sweep, Family, SweepOptions};

    // The CI family: 24 generated members over contraction rate × X0 ×
    // solver precision.  `warm_24` shares one fresh SweepCache across the
    // whole sweep (compiled queries, seed traces, LP candidates, built
    // dynamics); `cold_24` runs every member independently — the
    // per-scenario path a sweep engine without warm start would take.
    // Reports are byte-identical either way (asserted by
    // tests/family_warm_start.rs); the ratio of these two medians is the
    // warm-start speedup ci.sh records in BENCH_pr5.json.
    let family: Vec<Family> = builtin_families()
        .into_iter()
        .filter(|f| f.name() == "linear-ci-grid")
        .collect();
    assert_eq!(family.len(), 1, "the CI family exists");
    let mut group = c.benchmark_group("substrate/family_sweep");
    group.sample_size(10);
    for (name, warm_start) in [("warm_24", true), ("cold_24", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_sweep(
                    &family,
                    &SweepOptions {
                        threads: 1,
                        warm_start,
                        ..SweepOptions::default()
                    },
                )
                .expect("the CI family expands");
                black_box(report.results.len())
            });
        });
    }
    group.finish();
}

/// PR 7: budget-poll overhead on the headline decrease query.  The
/// `ungoverned` lane re-measures the pinned headline in this run; the
/// `governed` lane runs the identical query under a fuel budget generous
/// enough to never trip, so the difference is pure governance overhead
/// (one charge + three relaxed atomic loads per box pop).  ci.sh holds the
/// governed lane to ≤2% over the ungoverned lane and anchors it against
/// the BENCH_pr6.json record of the ungoverned headline.
fn govern_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/govern");
    // Generous sampling: the ≤2% overhead gate compares best-case
    // (minimum) sample times, which converge with sample count even on a
    // noisy shared host where medians swing several percent.
    group.sample_size(40);
    let domain = IntervalBox::from_bounds(&[(-5.0, 5.0), (-1.6, 1.6)]);
    let query = Formula::atom(Constraint::ge(lie_derivative(50), -1e-6));
    group.bench_function("decrease_query_50/ungoverned", |b| {
        let solver = DeltaSolver::new(1e-4);
        b.iter(|| solver.solve(&query, &domain));
    });
    group.bench_function("decrease_query_50/governed", |b| {
        let budget = nncps_deltasat::Budget::unlimited().with_fuel(u64::MAX / 2);
        let solver = DeltaSolver::new(1e-4).with_budget(budget);
        b.iter(|| solver.solve(&query, &domain));
    });
    group.finish();
}

/// PR 8: request overhead of the verification service.  Both lanes perform
/// the same verification work — the two-member smoke family, fresh caches
/// every iteration, one scenario thread — but `served` routes it through the
/// full protocol path on a freshly built [`ServeEngine`] (request parse,
/// worker-pool dispatch, member-event serialization, report embedding),
/// while `direct` calls the sweep engine in process and serializes the same
/// deterministic report.  The difference between their best-case times is
/// pure service overhead; ci.sh holds it to ≤5%.
fn serve_bench(c: &mut Criterion) {
    use nncps_scenarios::{
        run_sweep, AxisParam, Family, ParamAxis, Registry, ServeEngine, ServeOptions, SweepOptions,
        SMOKE_MANIFEST,
    };

    let registry = Registry::from_toml_str(SMOKE_MANIFEST).expect("smoke manifest parses");
    let base = registry
        .get("smoke-stable-spiral")
        .expect("smoke scenario exists")
        .clone();
    let families = vec![Family::new("smoke-pair", "delta pair", base)
        .with_axis(ParamAxis::grid(AxisParam::Delta, vec![1e-3, 1e-4]))
        .with_counts(2, 0)];

    let mut group = c.benchmark_group("substrate/serve");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_function("direct", |b| {
        b.iter(|| {
            let report = run_sweep(
                &families,
                &SweepOptions {
                    threads: 1,
                    warm_start: true,
                    ..SweepOptions::default()
                },
            )
            .expect("smoke family expands");
            black_box(report.to_json(false).len())
        });
    });
    group.bench_function("served", |b| {
        b.iter(|| {
            let engine = ServeEngine::new(
                families.clone(),
                &ServeOptions {
                    threads: 1,
                    store: None,
                },
            )
            .expect("engine builds");
            let mut last = 0usize;
            engine.handle_line(
                "{\"op\": \"submit\", \"family\": \"smoke-pair\"}",
                &mut |r| {
                    last = r.len();
                },
            );
            black_box(last)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(8));
    targets = lp_bench, deltasat_bench, tape_vs_tree_bench, specialize_bench,
        choice_spec_bench, batched_eval_bench, nn_bench, sim_bench,
        family_sweep_bench, govern_bench, serve_bench
}
criterion_main!(benches);
