//! Figure 5: the phase portrait of the verified closed loop.
//!
//! The figure shows the initial set `X0`, the unsafe set `U`, sample
//! trajectories Φs in the `(d_err, θ_err)` plane, and the ellipsoidal barrier
//! level set found by the procedure.  The harness prints the level and the
//! bounding description of the certified ellipse, and measures the two
//! ingredients of the figure: generating the batch of sample trajectories and
//! synthesizing the certified barrier.

use criterion::{criterion_group, criterion_main, Criterion};
use nncps_bench::{fast_config, paper_spec, paper_system, verify_once};
use nncps_sim::{Integrator, Simulator};

fn print_figure5_summary() {
    let spec = paper_spec();
    let system = paper_system(10);
    let outcome = verify_once(&system, fast_config());
    eprintln!();
    eprintln!("Figure 5 — phase portrait ingredients");
    let x0 = spec.initial_set();
    eprintln!(
        "X0: d_err in [{}, {}], theta_err in [{:.4}, {:.4}]",
        x0[0].lo(),
        x0[0].hi(),
        x0[1].lo(),
        x0[1].hi()
    );
    let domain = spec.domain();
    eprintln!(
        "U : complement of d_err in [{}, {}], theta_err in [{:.4}, {:.4}]",
        domain[0].lo(),
        domain[0].hi(),
        domain[1].lo(),
        domain[1].hi()
    );
    match outcome.certificate() {
        Some(certificate) => {
            eprintln!(
                "barrier: W(x) <= {:.6} with W = {}",
                certificate.level(),
                certificate.generator()
            );
        }
        None => eprintln!("verification inconclusive: {outcome}"),
    }
    eprintln!("(run `cargo run --release --example phase_portrait` for the full CSV)");
    eprintln!();
}

fn fig5(c: &mut Criterion) {
    print_figure5_summary();

    let spec = paper_spec();
    let system = paper_system(10);
    let dynamics = system.dynamics();
    let domain = spec.domain().clone();
    let starts: Vec<Vec<f64>> = vec![
        vec![4.0, 1.0],
        vec![-4.0, -1.0],
        vec![3.0, -1.2],
        vec![-3.0, 1.2],
        vec![2.0, 0.8],
        vec![-2.0, -0.8],
        vec![4.5, -0.5],
        vec![-4.5, 0.5],
    ];

    // The Φs trajectory batch shown in the figure.
    c.bench_function("fig5/sample_trajectories", |b| {
        let simulator = Simulator::new(Integrator::RungeKutta4, 0.05, 10.0);
        b.iter(|| {
            starts
                .iter()
                .map(|start| {
                    simulator
                        .simulate_until(&dynamics, start, |_, s| !domain.contains_point(s))
                        .len()
                })
                .sum::<usize>()
        });
    });

    // Synthesizing the barrier ellipse of the figure.
    let mut group = c.benchmark_group("fig5/barrier_synthesis");
    group.sample_size(10);
    group.bench_function("10_neurons", |b| {
        b.iter(|| {
            let outcome = verify_once(&system, fast_config());
            assert!(outcome.is_certified());
            outcome.certificate().map(|c| c.level())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(10));
    targets = fig5
}
criterion_main!(benches);
