//! Ablation benches for the design choices behind the Table 1 numbers (see
//! `ARCHITECTURE.md`):
//!
//! * **seed-trace budget** — how the number of seed simulations Φs affects
//!   the cost of one verification run (too few seeds push work into the
//!   counterexample loop, too many inflate the LP),
//! * **δ precision** — the cost of the decrease check as the δ-SAT precision
//!   is tightened,
//! * **trace downsampling** — the LP grows with the number of samples kept
//!   per trace; this sweep quantifies the LP-size/accuracy trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nncps_barrier::VerificationConfig;
use nncps_bench::{fast_config, paper_system, verify_once};

fn seed_trace_ablation(c: &mut Criterion) {
    let system = paper_system(10);
    let mut group = c.benchmark_group("ablation/seed_traces");
    group.sample_size(10);
    for seeds in [2usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(seeds), &seeds, |b, &seeds| {
            let config = VerificationConfig {
                num_seed_traces: seeds,
                max_candidate_iterations: 15,
                ..fast_config()
            };
            b.iter(|| {
                let outcome = verify_once(&system, config.clone());
                (outcome.is_certified(), outcome.stats().generator_iterations)
            });
        });
    }
    group.finish();
}

fn delta_ablation(c: &mut Criterion) {
    let system = paper_system(10);
    let mut group = c.benchmark_group("ablation/delta");
    group.sample_size(10);
    for (label, delta) in [("1e-3", 1e-3), ("1e-4", 1e-4), ("1e-5", 1e-5)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &delta, |b, &delta| {
            let config = VerificationConfig {
                delta,
                ..fast_config()
            };
            b.iter(|| verify_once(&system, config.clone()).is_certified());
        });
    }
    group.finish();
}

fn downsampling_ablation(c: &mut Criterion) {
    let system = paper_system(10);
    let mut group = c.benchmark_group("ablation/samples_per_trace");
    group.sample_size(10);
    for samples in [5usize, 15, 40] {
        group.bench_with_input(
            BenchmarkId::from_parameter(samples),
            &samples,
            |b, &samples| {
                let config = VerificationConfig {
                    max_samples_per_trace: samples,
                    ..fast_config()
                };
                b.iter(|| verify_once(&system, config.clone()).is_certified());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(10));
    targets = seed_trace_ablation, delta_ablation, downsampling_ablation
}
criterion_main!(benches);
