//! Resource governance: shareable budgets for fuel, wall-clock deadlines,
//! and cooperative cancellation.
//!
//! A [`Budget`] is a cheaply-cloneable handle polled at the existing loop
//! heads of the long-running stages (δ-SAT branch-and-prune, CMA-ES
//! generations, batch simulation, level-set bisection).  When a limit is
//! hit the stage degrades to a structured "inconclusive" carrying an
//! [`ExhaustionReason`] instead of hanging or crashing.
//!
//! # Determinism contract
//!
//! The three limits have different reproducibility guarantees:
//!
//! * **Fuel** is counted in *tape instructions executed* (the δ-SAT
//!   solver's `instructions_executed` counter), a pure function of the
//!   search tree.  The count is **per logical box**, in scalar-equivalent
//!   instructions: a sweep recorded ahead of time by the batched sibling
//!   evaluator is charged lazily, when (and only when) the box it belongs
//!   to is actually processed — so the counter, and therefore the fuel
//!   truncation point, is invariant across evaluation backends (batched or
//!   scalar) as well as machines, OS schedulers, and thread counts.
//!   Fuel-governed solves force the sequential search path so the
//!   truncation point is unique.  Fuel exhaustion may therefore appear in
//!   pinned deterministic reports.
//! * **Deadline** is wall-clock and inherently non-deterministic; it
//!   exists for service deployments and is excluded from pinned reports.
//! * **Cancellation** is an external signal (also non-deterministic).
//!
//! # Examples
//!
//! ```
//! use nncps_parallel::govern::{Budget, ExhaustionReason};
//!
//! let budget = Budget::unlimited().with_fuel(1000);
//! assert!(budget.check().is_none());
//! budget.charge_fuel(600);
//! assert!(budget.check().is_none());
//! budget.charge_fuel(600);
//! assert_eq!(budget.check(), Some(ExhaustionReason::Fuel(1000)));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a governed stage stopped early.
///
/// The `Display` form is the human-readable reason string that flows into
/// `VerificationOutcome::Inconclusive` and the batch reports; the
/// [`kind`](ExhaustionReason::kind)/[`limit`](ExhaustionReason::limit)
/// accessors are the machine-readable form serialized next to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustionReason {
    /// The δ-SAT box budget (`max_boxes`) was exhausted.
    Boxes(usize),
    /// The deterministic fuel limit (tape instructions) was exhausted.
    Fuel(u64),
    /// The wall-clock deadline passed (non-deterministic; service use).
    Deadline,
    /// The work was cooperatively cancelled.
    Cancelled,
}

impl ExhaustionReason {
    /// Machine-readable tag: `"boxes"`, `"fuel"`, `"deadline"`, or
    /// `"cancelled"`.
    pub fn kind(&self) -> &'static str {
        match self {
            ExhaustionReason::Boxes(_) => "boxes",
            ExhaustionReason::Fuel(_) => "fuel",
            ExhaustionReason::Deadline => "deadline",
            ExhaustionReason::Cancelled => "cancelled",
        }
    }

    /// The exhausted limit, when the variant carries one.
    pub fn limit(&self) -> Option<u64> {
        match self {
            ExhaustionReason::Boxes(n) => Some(*n as u64),
            ExhaustionReason::Fuel(n) => Some(*n),
            ExhaustionReason::Deadline | ExhaustionReason::Cancelled => None,
        }
    }

    /// Rebuilds a reason from its [`kind`](ExhaustionReason::kind) /
    /// [`limit`](ExhaustionReason::limit) parts (the report-JSON form).
    pub fn from_parts(kind: &str, limit: Option<u64>) -> Option<Self> {
        match kind {
            "boxes" => Some(ExhaustionReason::Boxes(limit? as usize)),
            "fuel" => Some(ExhaustionReason::Fuel(limit?)),
            "deadline" => Some(ExhaustionReason::Deadline),
            "cancelled" => Some(ExhaustionReason::Cancelled),
            _ => None,
        }
    }

    /// Whether this reason is deterministic (a pure function of the query,
    /// reproducible across machines and thread counts) and therefore
    /// allowed to appear in pinned deterministic reports.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, ExhaustionReason::Boxes(_) | ExhaustionReason::Fuel(_))
    }
}

impl std::fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Byte-for-byte the pre-governance reason string: scenario
            // fingerprints hash it, so it must never drift.
            ExhaustionReason::Boxes(n) => write!(f, "box budget of {n} exhausted"),
            ExhaustionReason::Fuel(n) => write!(f, "fuel budget of {n} instructions exhausted"),
            ExhaustionReason::Deadline => write!(f, "wall-clock deadline exceeded"),
            ExhaustionReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

#[derive(Debug, Default)]
struct Shared {
    fuel_limit: Option<u64>,
    deadline: Option<Instant>,
    fuel_used: AtomicU64,
    fuel_forced: AtomicBool,
    cancelled: AtomicBool,
}

/// A shareable, cheaply-checkable resource budget.
///
/// Clones share the same counters and flags, so a handle can be given to a
/// worker (or a remote cancel endpoint) while the solver polls another.
/// The default budget is unlimited and every check is a cheap no-op, so
/// ungoverned callers pay nothing.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    shared: Arc<Shared>,
}

impl Budget {
    /// A budget with no limits (checks always pass).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the deterministic fuel limit, counted in tape instructions.
    ///
    /// Must be called before the handle is shared (it rebuilds the shared
    /// state, so existing clones keep the old limits).
    pub fn with_fuel(self, instructions: u64) -> Self {
        Budget {
            shared: Arc::new(Shared {
                fuel_limit: Some(instructions),
                deadline: self.shared.deadline,
                ..Shared::default()
            }),
        }
    }

    /// Sets a wall-clock deadline `timeout` from now.
    ///
    /// Non-deterministic by nature: intended for service deployments, and
    /// excluded from pinned deterministic reports.  Must be called before
    /// the handle is shared.
    pub fn with_deadline(self, timeout: Duration) -> Self {
        Budget {
            shared: Arc::new(Shared {
                fuel_limit: self.shared.fuel_limit,
                deadline: Some(Instant::now() + timeout),
                ..Shared::default()
            }),
        }
    }

    /// Whether a fuel limit is set.  Fuel-governed δ-SAT solves force the
    /// sequential search path so the truncation point is deterministic.
    pub fn has_fuel_limit(&self) -> bool {
        self.shared.fuel_limit.is_some()
    }

    /// Whether a wall-clock deadline is set.  Deadline-governed runs are
    /// non-deterministic, so memoization layers refuse to cache them.
    pub fn has_deadline(&self) -> bool {
        self.shared.deadline.is_some()
    }

    /// Whether [`Budget::exhaust_fuel`] forced this budget into exhaustion.
    /// Forced exhaustion is a fault-injection artifact, not a pure function
    /// of the fuel limit, so memoization layers must treat it like a
    /// non-deterministic limit.
    pub fn fuel_forced(&self) -> bool {
        self.shared.fuel_forced.load(Ordering::Relaxed)
    }

    /// The fuel limit, if set.
    pub fn fuel_limit(&self) -> Option<u64> {
        self.shared.fuel_limit
    }

    /// Total fuel charged so far.
    pub fn fuel_used(&self) -> u64 {
        self.shared.fuel_used.load(Ordering::Relaxed)
    }

    /// Adds `instructions` to the fuel consumed.  Cheap (one relaxed
    /// atomic add); exhaustion is observed at the next [`Budget::check`].
    pub fn charge_fuel(&self, instructions: u64) {
        self.shared
            .fuel_used
            .fetch_add(instructions, Ordering::Relaxed);
    }

    /// Forces the budget into fuel exhaustion regardless of the counter
    /// (used by the fault-injection harness to rehearse the degradation
    /// path).  No effect unless a fuel limit is set.
    pub fn exhaust_fuel(&self) {
        self.shared.fuel_forced.store(true, Ordering::Relaxed);
    }

    /// Raises the cooperative cancellation flag; every governed loop
    /// observes it at its next poll.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`Budget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::Relaxed)
    }

    /// Polls every limit.  `None` means "keep going"; `Some(reason)` is the
    /// structured reason the stage should surface.  Checked in a fixed
    /// order (cancellation, fuel, deadline) so a run that trips several
    /// limits reports deterministically whenever the tripped limits are
    /// themselves deterministic.
    pub fn check(&self) -> Option<ExhaustionReason> {
        // Fast path: the unlimited budget reads two relaxed atomics.
        if self.is_cancelled() {
            return Some(ExhaustionReason::Cancelled);
        }
        if let Some(limit) = self.shared.fuel_limit {
            if self.shared.fuel_forced.load(Ordering::Relaxed) || self.fuel_used() >= limit {
                return Some(ExhaustionReason::Fuel(limit));
            }
        }
        if let Some(deadline) = self.shared.deadline {
            if Instant::now() >= deadline {
                return Some(ExhaustionReason::Deadline);
            }
        }
        None
    }

    /// [`Budget::charge_fuel`] followed by [`Budget::check`].
    pub fn charge_and_check(&self, instructions: u64) -> Option<ExhaustionReason> {
        self.charge_fuel(instructions);
        self.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = Budget::unlimited();
        budget.charge_fuel(u64::MAX / 2);
        assert_eq!(budget.check(), None);
        assert!(!budget.has_fuel_limit());
        assert_eq!(budget.fuel_limit(), None);
    }

    #[test]
    fn fuel_limit_trips_at_the_boundary() {
        let budget = Budget::unlimited().with_fuel(100);
        assert!(budget.has_fuel_limit());
        assert_eq!(budget.fuel_limit(), Some(100));
        budget.charge_fuel(99);
        assert_eq!(budget.check(), None);
        assert_eq!(
            budget.charge_and_check(1),
            Some(ExhaustionReason::Fuel(100))
        );
        assert_eq!(budget.fuel_used(), 100);
    }

    #[test]
    fn clones_share_state() {
        let budget = Budget::unlimited().with_fuel(10);
        let clone = budget.clone();
        clone.charge_fuel(10);
        assert_eq!(budget.check(), Some(ExhaustionReason::Fuel(10)));
        budget.cancel();
        assert!(clone.is_cancelled());
        // Cancellation outranks fuel in the fixed check order.
        assert_eq!(clone.check(), Some(ExhaustionReason::Cancelled));
    }

    #[test]
    fn forced_fuel_exhaustion_requires_a_limit() {
        let unlimited = Budget::unlimited();
        unlimited.exhaust_fuel();
        assert_eq!(unlimited.check(), None);
        let limited = Budget::unlimited().with_fuel(1_000_000);
        limited.exhaust_fuel();
        assert_eq!(limited.check(), Some(ExhaustionReason::Fuel(1_000_000)));
    }

    #[test]
    fn deadline_in_the_past_trips() {
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(budget.check(), Some(ExhaustionReason::Deadline));
        let future = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(future.check(), None);
    }

    #[test]
    fn reason_display_and_parts_round_trip() {
        let cases = [
            (
                ExhaustionReason::Boxes(2_000_000),
                "box budget of 2000000 exhausted",
            ),
            (
                ExhaustionReason::Fuel(512),
                "fuel budget of 512 instructions exhausted",
            ),
            (ExhaustionReason::Deadline, "wall-clock deadline exceeded"),
            (ExhaustionReason::Cancelled, "cancelled"),
        ];
        for (reason, text) in cases {
            assert_eq!(reason.to_string(), text);
            assert_eq!(
                ExhaustionReason::from_parts(reason.kind(), reason.limit()),
                Some(reason)
            );
        }
        assert!(ExhaustionReason::from_parts("martian", None).is_none());
        assert!(ExhaustionReason::from_parts("fuel", None).is_none());
        assert!(ExhaustionReason::Boxes(5).is_deterministic());
        assert!(ExhaustionReason::Fuel(5).is_deterministic());
        assert!(!ExhaustionReason::Deadline.is_deterministic());
        assert!(!ExhaustionReason::Cancelled.is_deterministic());
    }
}
