//! Order-preserving scoped-thread map: the workspace's `rayon` stand-in.
//!
//! The workspace builds without registry access, so instead of `rayon` the
//! data-parallel layers of the simulator (batch trace collection), the
//! CMA-ES optimizer (population evaluation), and the δ-SAT solver (box-stack
//! work queue) share this small work-claiming loop on `std::thread::scope`:
//! workers atomically claim item indices, compute into thread-local buffers,
//! and the results are stitched back together in input order, so the output
//! is identical to the sequential map regardless of scheduling.
//!
//! Disabling the `threads` feature turns [`parallel_map`] into a plain
//! sequential map with an unchanged signature; the downstream crates expose
//! this as their `parallel` feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod govern;
pub mod pool;

pub use govern::{Budget, ExhaustionReason};
pub use pool::WorkerPool;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count knob: `0` means "one per available core".
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Maps `f` over `items` using up to `threads` worker threads, preserving
/// input order in the output.
///
/// Falls back to a plain sequential map when `threads <= 1`, when there is at
/// most one item, or when the `threads` feature is disabled (the signature —
/// including the `Sync`/`Send` bounds — is identical either way, so callers
/// do not need their own feature gates).
///
/// # Examples
///
/// ```
/// use nncps_parallel::parallel_map;
///
/// let squares = parallel_map(&[1, 2, 3, 4], 0, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads).min(items.len());
    if !cfg!(feature = "threads") || threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        local.push((index, f(&items[index])));
                    }
                    local
                })
            })
            .collect();
        per_worker = handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect();
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (index, value) in per_worker.into_iter().flatten() {
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

/// The structured remains of one panicked [`parallel_map_isolated`] item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crash {
    /// The panic payload, downcast to a string when possible.
    pub payload: String,
}

impl Crash {
    fn from_payload(payload: Box<dyn std::any::Any + Send>) -> Self {
        let payload = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Crash { payload }
    }
}

impl std::fmt::Display for Crash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "panicked: {}", self.payload)
    }
}

/// Runs `f`, converting a panic into an `Err(Crash)` with the payload
/// downcast to a string when possible.  This is the single-item form of
/// [`parallel_map_isolated`], for callers that schedule work themselves
/// (e.g. jobs on a [`WorkerPool`]).
///
/// # Examples
///
/// ```
/// use nncps_parallel::catch_crash;
///
/// assert_eq!(catch_crash(|| 21 * 2).unwrap(), 42);
/// let crash = catch_crash(|| -> i32 { panic!("boom") }).unwrap_err();
/// assert_eq!(crash.payload, "boom");
/// ```
pub fn catch_crash<R>(f: impl FnOnce() -> R) -> Result<R, Crash> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(Crash::from_payload)
}

/// Like [`parallel_map`], but isolates panics: a panicking `f(item)` becomes
/// an `Err(Crash)` in that item's output slot instead of tearing down the
/// whole map.  Output order still matches input order, and the non-panicking
/// items' results are exactly what [`parallel_map`] would have produced.
///
/// `f` must not hold locks across the closure body that sibling items also
/// take, or a panic can poison them — the sweep engine's caches recover from
/// poisoning for exactly this reason.
///
/// # Examples
///
/// ```
/// use nncps_parallel::parallel_map_isolated;
///
/// let out = parallel_map_isolated(&[1, 2, 3], 1, |&x| {
///     assert!(x != 2, "two is right out");
///     x * 10
/// });
/// assert_eq!(out[0].as_ref().unwrap(), &10);
/// assert!(out[1].as_ref().unwrap_err().payload.contains("two is right out"));
/// assert_eq!(out[2].as_ref().unwrap(), &30);
/// ```
pub fn parallel_map_isolated<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, Crash>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map(items, threads, |item| catch_crash(|| f(item)))
}

/// Like [`parallel_map`], but consumes the items, so workers move each value
/// into `f` instead of borrowing it — use when cloning the items would be
/// wasteful (e.g. the δ-SAT solver's box batches).
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = effective_threads(threads).min(items.len());
    if !cfg!(feature = "threads") || threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    let results = parallel_map(&slots, threads, |slot| {
        let item = slot
            .lock()
            .expect("no worker panicked holding an item slot")
            .take()
            .expect("every index is claimed exactly once");
        f(item)
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_map_matches_sequential_and_moves_items() {
        let items: Vec<String> = (0..37).map(|i| format!("item-{i}")).collect();
        let expected: Vec<usize> = items.iter().map(|s| s.len()).collect();
        for threads in [0, 1, 3] {
            assert_eq!(
                parallel_map_owned(items.clone(), threads, |s| s.len()),
                expected
            );
        }
    }

    #[test]
    fn matches_sequential_map_in_order() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 7] {
            assert_eq!(parallel_map(&items, threads, |&x| x * x), expected);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn effective_threads_resolves_zero_to_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn isolated_map_contains_panics_and_preserves_order() {
        let items: Vec<usize> = (0..31).collect();
        for threads in [1, 4] {
            let out = parallel_map_isolated(&items, threads, |&x| {
                if x % 7 == 3 {
                    panic!("poisoned item {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, slot) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let crash = slot.as_ref().unwrap_err();
                    assert_eq!(crash.payload, format!("poisoned item {i}"));
                    assert!(crash.to_string().contains("panicked"));
                } else {
                    assert_eq!(slot.as_ref().unwrap(), &(i * 2));
                }
            }
        }
    }

    #[test]
    fn isolated_map_matches_plain_map_without_panics() {
        let items: Vec<i64> = (0..50).collect();
        let plain = parallel_map(&items, 3, |&x| x * x);
        let isolated: Vec<i64> = parallel_map_isolated(&items, 3, |&x| x * x)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(plain, isolated);
    }

    #[test]
    fn crash_payload_downcasts_string_payloads() {
        let out = parallel_map_isolated(&[0], 1, |_| -> () {
            std::panic::panic_any(format!("owned {}", 42));
        });
        assert_eq!(out[0].as_ref().unwrap_err().payload, "owned 42");
        let opaque = parallel_map_isolated(&[0], 1, |_| -> () {
            std::panic::panic_any(7usize);
        });
        assert_eq!(
            opaque[0].as_ref().unwrap_err().payload,
            "non-string panic payload"
        );
    }
}
