//! A long-lived work-stealing worker pool on `std` threads.
//!
//! [`parallel_map`](crate::parallel_map) spawns scoped workers per call and
//! tears them down when the map returns — the right shape for a one-shot
//! batch, but wrong for a resident service that fields many requests over
//! its lifetime.  [`WorkerPool`] keeps its workers alive between
//! submissions: jobs land on per-worker deques (round-robin), each worker
//! drains its own deque from the front and steals from a sibling's back
//! when idle, so an uneven submission (one huge family next to a tiny one)
//! still saturates every worker.
//!
//! The pool makes **no ordering promises** — completion order is whatever
//! the scheduler produces.  Deterministic-report callers impose order above
//! the pool by tagging jobs with their index and reassembling (the serve
//! engine does exactly this), which keeps streaming-in-completion-order and
//! byte-stable reports from fighting each other.
//!
//! A panicking job is contained to that job: the worker catches the unwind
//! and moves on.  Callers that need the payload route it through
//! [`catch_crash`](crate::catch_crash) inside the job instead.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queues: Vec<VecDeque<Job>>,
    /// Round-robin cursor for [`WorkerPool::spawn`] placements.
    next_queue: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A fixed-size pool of long-lived worker threads with per-worker deques
/// and idle-time stealing (see the [module docs](self)).
///
/// Dropping the pool shuts it down: queued jobs still run to completion,
/// then the workers exit and are joined.
///
/// # Examples
///
/// ```
/// use std::sync::mpsc;
/// use nncps_parallel::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let (tx, rx) = mpsc::channel();
/// for i in 0..8u64 {
///     let tx = tx.clone();
///     pool.spawn(move || tx.send(i * i).unwrap());
/// }
/// let mut squares: Vec<u64> = rx.iter().take(8).collect();
/// squares.sort_unstable();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Starts a pool with `threads` workers (`0` = one per available core).
    /// With the `threads` feature disabled the pool degrades to a single
    /// worker, matching [`parallel_map`](crate::parallel_map)'s sequential
    /// fallback.
    pub fn new(threads: usize) -> Self {
        let threads = if cfg!(feature = "threads") {
            crate::effective_threads(threads).max(1)
        } else {
            1
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..threads).map(|_| VecDeque::new()).collect(),
                next_queue: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|home| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, home))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job.  Jobs are placed round-robin across the per-worker
    /// deques; an idle worker steals from its siblings, so placement only
    /// affects locality, never whether a job runs.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let slot = state.next_queue;
        state.next_queue = (slot + 1) % state.queues.len();
        state.queues[slot].push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Number of jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queues
            .iter()
            .map(VecDeque::len)
            .sum()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a job (it cannot: jobs are
            // unwind-caught) would surface here; ignore so Drop never
            // panics while unwinding.
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, home: usize) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                // Own deque first (front = submission order), then steal
                // from the back of a sibling's deque.
                if let Some(job) = state.queues[home].pop_front() {
                    break Some(job);
                }
                let siblings = state.queues.len();
                let stolen = (1..siblings)
                    .map(|offset| (home + offset) % siblings)
                    .find_map(|victim| state.queues[victim].pop_back());
                if let Some(job) = stolen {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            // Contain per-job panics: the job owner routes payloads through
            // `catch_crash` if it wants them; the pool itself must survive.
            Some(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn all_jobs_run_once_across_thread_counts() {
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.threads(), threads);
            let counter = Arc::new(AtomicUsize::new(0));
            let (tx, rx) = mpsc::channel();
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                let tx = tx.clone();
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    tx.send(()).unwrap();
                });
            }
            for _ in 0..64 {
                rx.recv().unwrap();
            }
            assert_eq!(counter.load(Ordering::Relaxed), 64);
        }
    }

    #[test]
    fn panicking_jobs_do_not_kill_the_pool() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..16 {
            let tx = tx.clone();
            pool.spawn(move || {
                if i % 3 == 0 {
                    panic!("job {i} goes down");
                }
                tx.send(i).unwrap();
            });
        }
        let mut survivors: Vec<i32> = rx.iter().take(10).collect();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![1, 2, 4, 5, 7, 8, 10, 11, 13, 14]);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        // Drop joined the worker, which drained its deque first.
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn stealing_spreads_an_uneven_backlog() {
        // One slow job occupies the home worker of half the queue; the
        // other worker must steal the rest or the channel never fills.
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..20u32 {
            let tx = tx.clone();
            pool.spawn(move || {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                tx.send(i).unwrap();
            });
        }
        let received: Vec<u32> = rx.iter().take(20).collect();
        assert_eq!(received.len(), 20);
    }

    #[test]
    fn zero_resolves_to_available_cores() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(pool.queued(), 0);
    }
}
