//! Explicit ODE integration schemes.

use crate::Dynamics;

/// Explicit one-step integration schemes for `ẋ = f(x)`.
///
/// The fixed-step schemes advance by exactly the requested step; the adaptive
/// Runge–Kutta–Fehlberg 4(5) scheme subdivides the requested step internally
/// until its local error estimate meets the tolerance, which makes it a good
/// default when the neural controller saturates and produces stiff-ish
/// transients.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Integrator {
    /// Explicit (forward) Euler — first order, used mainly in tests and as the
    /// discrete-time model for controller training.
    Euler,
    /// Explicit midpoint method — second order.
    Midpoint,
    /// The classic fourth-order Runge–Kutta scheme.
    #[default]
    RungeKutta4,
    /// Runge–Kutta–Fehlberg 4(5) with the given absolute local-error tolerance
    /// per step.
    RungeKuttaFehlberg45 {
        /// Target local truncation error per (outer) step.
        tolerance: f64,
    },
}

impl Integrator {
    /// Advances the state by one step of size `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive or `state.len()` differs from
    /// the dynamics dimension.
    pub fn step<D: Dynamics + ?Sized>(&self, dynamics: &D, state: &[f64], dt: f64) -> Vec<f64> {
        assert!(dt > 0.0, "step size must be positive");
        assert_eq!(
            state.len(),
            dynamics.dim(),
            "state dimension must match the dynamics"
        );
        match *self {
            Integrator::Euler => euler_step(dynamics, state, dt),
            Integrator::Midpoint => midpoint_step(dynamics, state, dt),
            Integrator::RungeKutta4 => rk4_step(dynamics, state, dt),
            Integrator::RungeKuttaFehlberg45 { tolerance } => {
                rkf45_step(dynamics, state, dt, tolerance)
            }
        }
    }
}

fn axpy(state: &[f64], scale: f64, direction: &[f64]) -> Vec<f64> {
    state
        .iter()
        .zip(direction.iter())
        .map(|(x, d)| x + scale * d)
        .collect()
}

fn euler_step<D: Dynamics + ?Sized>(dynamics: &D, state: &[f64], dt: f64) -> Vec<f64> {
    let k1 = dynamics.derivative(state);
    axpy(state, dt, &k1)
}

fn midpoint_step<D: Dynamics + ?Sized>(dynamics: &D, state: &[f64], dt: f64) -> Vec<f64> {
    let k1 = dynamics.derivative(state);
    let mid = axpy(state, dt / 2.0, &k1);
    let k2 = dynamics.derivative(&mid);
    axpy(state, dt, &k2)
}

fn rk4_step<D: Dynamics + ?Sized>(dynamics: &D, state: &[f64], dt: f64) -> Vec<f64> {
    let k1 = dynamics.derivative(state);
    let k2 = dynamics.derivative(&axpy(state, dt / 2.0, &k1));
    let k3 = dynamics.derivative(&axpy(state, dt / 2.0, &k2));
    let k4 = dynamics.derivative(&axpy(state, dt, &k3));
    state
        .iter()
        .enumerate()
        .map(|(i, x)| x + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
        .collect()
}

/// One outer step of the adaptive RKF45 scheme: internally subdivides until
/// the accumulated sub-steps cover `dt` while each sub-step meets `tolerance`.
fn rkf45_step<D: Dynamics + ?Sized>(
    dynamics: &D,
    state: &[f64],
    dt: f64,
    tolerance: f64,
) -> Vec<f64> {
    let tolerance = tolerance.max(1e-14);
    let mut x = state.to_vec();
    let mut remaining = dt;
    let mut h = dt;
    let min_h = dt * 1e-6;
    while remaining > 1e-15 {
        h = h.min(remaining);
        let (candidate, error) = rkf45_embedded(dynamics, &x, h);
        if error <= tolerance || h <= min_h {
            x = candidate;
            remaining -= h;
            // Grow the step conservatively for the next sub-step.
            let factor = if error > 0.0 {
                0.9 * (tolerance / error).powf(0.2)
            } else {
                2.0
            };
            h *= factor.clamp(0.2, 4.0);
        } else {
            // Reject and shrink.
            let factor = 0.9 * (tolerance / error).powf(0.25);
            h *= factor.clamp(0.1, 0.9);
            h = h.max(min_h);
        }
    }
    x
}

/// One embedded RKF45 step returning the 5th-order estimate and an error
/// estimate (max-norm difference between the 4th- and 5th-order solutions).
fn rkf45_embedded<D: Dynamics + ?Sized>(dynamics: &D, state: &[f64], h: f64) -> (Vec<f64>, f64) {
    let k1 = dynamics.derivative(state);
    let k2 = dynamics.derivative(&combine(state, h, &[(0.25, &k1)]));
    let k3 = dynamics.derivative(&combine(state, h, &[(3.0 / 32.0, &k1), (9.0 / 32.0, &k2)]));
    let k4 = dynamics.derivative(&combine(
        state,
        h,
        &[
            (1932.0 / 2197.0, &k1),
            (-7200.0 / 2197.0, &k2),
            (7296.0 / 2197.0, &k3),
        ],
    ));
    let k5 = dynamics.derivative(&combine(
        state,
        h,
        &[
            (439.0 / 216.0, &k1),
            (-8.0, &k2),
            (3680.0 / 513.0, &k3),
            (-845.0 / 4104.0, &k4),
        ],
    ));
    let k6 = dynamics.derivative(&combine(
        state,
        h,
        &[
            (-8.0 / 27.0, &k1),
            (2.0, &k2),
            (-3544.0 / 2565.0, &k3),
            (1859.0 / 4104.0, &k4),
            (-11.0 / 40.0, &k5),
        ],
    ));

    let order4 = combine(
        state,
        h,
        &[
            (25.0 / 216.0, &k1),
            (1408.0 / 2565.0, &k3),
            (2197.0 / 4104.0, &k4),
            (-1.0 / 5.0, &k5),
        ],
    );
    let order5 = combine(
        state,
        h,
        &[
            (16.0 / 135.0, &k1),
            (6656.0 / 12825.0, &k3),
            (28561.0 / 56430.0, &k4),
            (-9.0 / 50.0, &k5),
            (2.0 / 55.0, &k6),
        ],
    );
    let error = order4
        .iter()
        .zip(order5.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    (order5, error)
}

fn combine(state: &[f64], h: f64, terms: &[(f64, &Vec<f64>)]) -> Vec<f64> {
    let mut out = state.to_vec();
    for (coef, k) in terms {
        for (o, v) in out.iter_mut().zip(k.iter()) {
            *o += h * coef * v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnDynamics;

    fn decay() -> FnDynamics<impl Fn(&[f64]) -> Vec<f64>> {
        FnDynamics::new(1, |s: &[f64]| vec![-s[0]])
    }

    fn oscillator() -> FnDynamics<impl Fn(&[f64]) -> Vec<f64>> {
        FnDynamics::new(2, |s: &[f64]| vec![s[1], -s[0]])
    }

    /// Integrates to t=1 with the given step count and returns the error
    /// against the exact solution e^{-1}.
    fn decay_error(integrator: Integrator, steps: usize) -> f64 {
        let d = decay();
        let dt = 1.0 / steps as f64;
        let mut x = vec![1.0];
        for _ in 0..steps {
            x = integrator.step(&d, &x, dt);
        }
        (x[0] - (-1.0_f64).exp()).abs()
    }

    #[test]
    fn all_schemes_approximate_exponential_decay() {
        assert!(decay_error(Integrator::Euler, 1000) < 1e-3);
        assert!(decay_error(Integrator::Midpoint, 1000) < 1e-6);
        assert!(decay_error(Integrator::RungeKutta4, 100) < 1e-9);
        assert!(decay_error(Integrator::RungeKuttaFehlberg45 { tolerance: 1e-10 }, 10) < 1e-8);
    }

    #[test]
    fn convergence_orders_are_respected() {
        // Halving the step size should reduce the error by roughly 2^order.
        let e_coarse = decay_error(Integrator::Euler, 100);
        let e_fine = decay_error(Integrator::Euler, 200);
        assert!(e_coarse / e_fine > 1.8 && e_coarse / e_fine < 2.2);

        let m_coarse = decay_error(Integrator::Midpoint, 100);
        let m_fine = decay_error(Integrator::Midpoint, 200);
        assert!(m_coarse / m_fine > 3.5 && m_coarse / m_fine < 4.5);

        let r_coarse = decay_error(Integrator::RungeKutta4, 10);
        let r_fine = decay_error(Integrator::RungeKutta4, 20);
        assert!(r_coarse / r_fine > 12.0 && r_coarse / r_fine < 20.0);
    }

    #[test]
    fn rk4_preserves_oscillator_energy_well() {
        let d = oscillator();
        let mut x = vec![1.0, 0.0];
        let dt = 0.01;
        for _ in 0..628 {
            // roughly one period (2π)
            x = Integrator::RungeKutta4.step(&d, &x, dt);
        }
        let energy = x[0] * x[0] + x[1] * x[1];
        assert!((energy - 1.0).abs() < 1e-6);
        // Position should be back near 1 after a full period.
        assert!((x[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn adaptive_scheme_matches_rk4_on_smooth_problem() {
        let d = oscillator();
        let mut a = vec![0.3, -0.4];
        let mut b = a.clone();
        for _ in 0..100 {
            a = Integrator::RungeKutta4.step(&d, &a, 0.01);
            b = Integrator::RungeKuttaFehlberg45 { tolerance: 1e-12 }.step(&d, &b, 0.01);
        }
        assert!((a[0] - b[0]).abs() < 1e-8);
        assert!((a[1] - b[1]).abs() < 1e-8);
    }

    #[test]
    fn default_is_rk4() {
        assert_eq!(Integrator::default(), Integrator::RungeKutta4);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn non_positive_step_panics() {
        let _ = Integrator::Euler.step(&decay(), &[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "state dimension")]
    fn wrong_state_dimension_panics() {
        let _ = Integrator::Euler.step(&oscillator(), &[1.0], 0.1);
    }
}
