//! Time-stamped simulation traces.

use std::fmt;

/// One time-stamped sample of a [`Trace`]: `(t_k, x_k)`.
pub type Sample<'a> = (f64, &'a [f64]);

/// A simulation trace: a sequence of time-stamped states.
///
/// Traces are the raw material of the barrier-certificate synthesis: the
/// positivity and decrease constraints of the LP are generated from the
/// sampled states of one or more traces (Φs in the paper), and counterexample
/// traces (Φf) are appended after each SMT refutation.
///
/// # Examples
///
/// ```
/// use nncps_sim::Trace;
///
/// let mut trace = Trace::new(2);
/// trace.push(0.0, vec![1.0, 0.0]);
/// trace.push(0.1, vec![0.9, -0.1]);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.final_state(), &[0.9, -0.1]);
/// assert_eq!(trace.consecutive_pairs().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    dim: usize,
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
}

impl Trace {
    /// Creates an empty trace for states of the given dimension.
    pub fn new(dim: usize) -> Self {
        Trace {
            dim,
            times: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Creates a trace from parallel vectors of times and states.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, any state has the wrong dimension, or
    /// the times are not non-decreasing.
    pub fn from_samples(dim: usize, times: Vec<f64>, states: Vec<Vec<f64>>) -> Self {
        assert_eq!(times.len(), states.len(), "times/states length mismatch");
        let mut trace = Trace::new(dim);
        for (t, s) in times.into_iter().zip(states) {
            trace.push(t, s);
        }
        trace
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of samples in the trace.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if the state has the wrong dimension or the time is smaller
    /// than the previous sample's time.
    pub fn push(&mut self, time: f64, state: Vec<f64>) {
        assert_eq!(state.len(), self.dim, "state dimension mismatch");
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "trace times must be non-decreasing");
        }
        self.times.push(time);
        self.states.push(state);
    }

    /// The sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sampled states.
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// The state at sample `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn state(&self, index: usize) -> &[f64] {
        &self.states[index]
    }

    /// The first state of the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn initial_state(&self) -> &[f64] {
        self.states.first().expect("trace is empty")
    }

    /// The last state of the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn final_state(&self) -> &[f64] {
        self.states.last().expect("trace is empty")
    }

    /// Total simulated duration (last time minus first time), `0` when fewer
    /// than two samples exist.
    pub fn duration(&self) -> f64 {
        match (self.times.first(), self.times.last()) {
            (Some(first), Some(last)) => last - first,
            _ => 0.0,
        }
    }

    /// Iterator over consecutive sample pairs `((t_k, x_k), (t_{k+1}, x_{k+1}))`,
    /// the unit from which decrease constraints are generated.
    pub fn consecutive_pairs(&self) -> impl Iterator<Item = (Sample<'_>, Sample<'_>)> + '_ {
        (0..self.len().saturating_sub(1)).map(move |k| {
            (
                (self.times[k], self.states[k].as_slice()),
                (self.times[k + 1], self.states[k + 1].as_slice()),
            )
        })
    }

    /// Iterator over `(time, state)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> + '_ {
        self.times
            .iter()
            .copied()
            .zip(self.states.iter().map(Vec::as_slice))
    }

    /// Maximum absolute value attained by state component `component` over
    /// the trace, or `None` for an empty trace.
    ///
    /// # Panics
    ///
    /// Panics if `component >= self.dim()`.
    pub fn max_abs_component(&self, component: usize) -> Option<f64> {
        assert!(component < self.dim, "component index out of range");
        self.states
            .iter()
            .map(|s| s[component].abs())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Returns a copy of the trace keeping at most `max_samples` evenly spaced
    /// samples (always including the first and last sample).
    ///
    /// The LP synthesis only needs a representative subset of each trajectory;
    /// downsampling keeps the dense simplex tableau small without changing the
    /// qualitative constraints.
    ///
    /// # Panics
    ///
    /// Panics if `max_samples < 2`.
    pub fn downsampled(&self, max_samples: usize) -> Trace {
        assert!(max_samples >= 2, "need at least two samples");
        if self.len() <= max_samples {
            return self.clone();
        }
        let mut out = Trace::new(self.dim);
        let last = self.len() - 1;
        for k in 0..max_samples {
            let index = (k as f64 / (max_samples - 1) as f64 * last as f64).round() as usize;
            out.push(self.times[index], self.states[index].clone());
        }
        out
    }

    /// Writes the trace as CSV (`time,x0,x1,...`) — used by the figure
    /// regeneration examples.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time");
        for i in 0..self.dim {
            out.push_str(&format!(",x{i}"));
        }
        out.push('\n');
        for (t, s) in self.iter() {
            out.push_str(&format!("{t}"));
            for v in s {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace with {} samples over {:.3}s in {}D",
            self.len(),
            self.duration(),
            self.dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_samples(
            2,
            vec![0.0, 0.1, 0.2],
            vec![vec![1.0, 0.0], vec![0.9, -0.2], vec![0.7, -0.3]],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample_trace();
        assert_eq!(t.dim(), 2);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.initial_state(), &[1.0, 0.0]);
        assert_eq!(t.final_state(), &[0.7, -0.3]);
        assert_eq!(t.state(1), &[0.9, -0.2]);
        assert!((t.duration() - 0.2).abs() < 1e-15);
        assert_eq!(t.times().len(), 3);
        assert_eq!(t.states().len(), 3);
        assert_eq!(Trace::new(3).duration(), 0.0);
    }

    #[test]
    fn pairs_and_iteration() {
        let t = sample_trace();
        let pairs: Vec<_> = t.consecutive_pairs().collect();
        assert_eq!(pairs.len(), 2);
        let ((t0, s0), (t1, s1)) = pairs[0];
        assert_eq!(t0, 0.0);
        assert_eq!(t1, 0.1);
        assert_eq!(s0, &[1.0, 0.0]);
        assert_eq!(s1, &[0.9, -0.2]);
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn max_abs_component() {
        let t = sample_trace();
        assert_eq!(t.max_abs_component(0), Some(1.0));
        assert_eq!(t.max_abs_component(1), Some(0.3));
        assert_eq!(Trace::new(1).max_abs_component(0), None);
    }

    #[test]
    fn csv_round_numbers() {
        let t = sample_trace();
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time,x0,x1"));
        assert_eq!(lines.next(), Some("0,1,0"));
        assert_eq!(csv.lines().count(), 4);
        let s = format!("{t}");
        assert!(s.contains("3 samples"));
    }

    #[test]
    fn downsampling_keeps_endpoints_and_bounds_length() {
        let mut t = Trace::new(1);
        for k in 0..101 {
            t.push(k as f64 * 0.1, vec![k as f64]);
        }
        let d = t.downsampled(11);
        assert_eq!(d.len(), 11);
        assert_eq!(d.initial_state(), t.initial_state());
        assert_eq!(d.final_state(), t.final_state());
        // Times stay non-decreasing and within the original range.
        assert!(d.times().windows(2).all(|w| w[0] <= w[1]));
        // A short trace is returned unchanged.
        let short = sample_trace();
        assert_eq!(short.downsampled(10), short);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn downsampling_to_one_sample_panics() {
        let _ = sample_trace().downsampled(1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_state_dimension_panics() {
        let mut t = Trace::new(2);
        t.push(0.0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_times_panic() {
        let mut t = Trace::new(1);
        t.push(1.0, vec![0.0]);
        t.push(0.5, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "trace is empty")]
    fn final_state_of_empty_trace_panics() {
        let _ = Trace::new(1).final_state();
    }
}
