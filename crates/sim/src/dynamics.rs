//! The `Dynamics` trait and its standard implementations.

use nncps_expr::Expr;

/// An autonomous continuous-time system `ẋ = f(x)`.
///
/// The closed-loop models produced by composing a plant with a neural-network
/// controller (Equation (4) of the paper) are autonomous, so the trait does
/// not carry an explicit time argument.
pub trait Dynamics {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Evaluates the vector field at `state`, returning `ẋ`.
    ///
    /// Implementations may assume `state.len() == self.dim()` and must return
    /// a vector of the same length.
    fn derivative(&self, state: &[f64]) -> Vec<f64>;
}

/// Dynamics defined by a plain Rust closure.
///
/// # Examples
///
/// ```
/// use nncps_sim::{Dynamics, FnDynamics};
///
/// // Harmonic oscillator: x' = v, v' = -x.
/// let oscillator = FnDynamics::new(2, |s: &[f64]| vec![s[1], -s[0]]);
/// assert_eq!(oscillator.derivative(&[0.0, 1.0]), vec![1.0, 0.0]);
/// ```
pub struct FnDynamics<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64]) -> Vec<f64>> FnDynamics<F> {
    /// Wraps a closure computing the vector field of a `dim`-dimensional system.
    pub fn new(dim: usize, f: F) -> Self {
        FnDynamics { dim, f }
    }
}

impl<F: Fn(&[f64]) -> Vec<f64>> Dynamics for FnDynamics<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn derivative(&self, state: &[f64]) -> Vec<f64> {
        debug_assert_eq!(state.len(), self.dim, "state dimension mismatch");
        let out = (self.f)(state);
        debug_assert_eq!(out.len(), self.dim, "derivative dimension mismatch");
        out
    }
}

impl<F> std::fmt::Debug for FnDynamics<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnDynamics")
            .field("dim", &self.dim)
            .finish()
    }
}

/// Dynamics defined by symbolic expressions, one per state component.
///
/// Using [`ExprDynamics`] for simulation guarantees that the trajectories the
/// LP is fitted to and the vector field inside the δ-SAT queries come from
/// the *same* mathematical object — the consistency requirement the paper
/// discusses at the end of Section 3.
///
/// # Examples
///
/// ```
/// use nncps_expr::Expr;
/// use nncps_sim::{Dynamics, ExprDynamics};
///
/// let x = Expr::var(0);
/// let v = Expr::var(1);
/// let oscillator = ExprDynamics::new(vec![v, -x]);
/// assert_eq!(oscillator.derivative(&[0.0, 1.0]), vec![1.0, -0.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ExprDynamics {
    components: Vec<Expr>,
}

impl ExprDynamics {
    /// Creates dynamics from one expression per state derivative.
    ///
    /// # Panics
    ///
    /// Panics if any expression references a variable index outside
    /// `0..components.len()`.
    pub fn new(components: Vec<Expr>) -> Self {
        let dim = components.len();
        for (i, c) in components.iter().enumerate() {
            assert!(
                c.num_vars() <= dim,
                "component {i} references variable x{} but the state has {dim} dimensions",
                c.num_vars() - 1
            );
        }
        ExprDynamics { components }
    }

    /// The symbolic components of the vector field.
    pub fn components(&self) -> &[Expr] {
        &self.components
    }
}

impl Dynamics for ExprDynamics {
    fn dim(&self) -> usize {
        self.components.len()
    }

    fn derivative(&self, state: &[f64]) -> Vec<f64> {
        self.components.iter().map(|c| c.eval(state)).collect()
    }
}

/// A plant (or closed loop) that can export its vector field symbolically.
///
/// This is the common interface the scenario registry uses to register
/// heterogeneous plants — the Dubins error dynamics, the pendulum, the train
/// speed controller — behind one trait: the same object simulates (via
/// [`Dynamics`]) and produces the `f(x)` expressions that appear inside the
/// δ-SAT queries, so the simulated and verified models provably coincide.
///
/// # Examples
///
/// ```
/// use nncps_expr::Expr;
/// use nncps_sim::{ExprDynamics, SymbolicDynamics};
///
/// let decay = ExprDynamics::new(vec![-Expr::var(0)]);
/// let field = decay.symbolic_vector_field();
/// assert_eq!(field.len(), 1);
/// assert_eq!(field[0].eval(&[2.0]), -2.0);
/// ```
pub trait SymbolicDynamics: Dynamics {
    /// The symbolic vector field, one expression per state component, using
    /// variable indices `0..self.dim()`.
    fn symbolic_vector_field(&self) -> Vec<Expr>;
}

impl SymbolicDynamics for ExprDynamics {
    fn symbolic_vector_field(&self) -> Vec<Expr> {
        self.components.clone()
    }
}

impl<D: SymbolicDynamics + ?Sized> SymbolicDynamics for &D {
    fn symbolic_vector_field(&self) -> Vec<Expr> {
        (**self).symbolic_vector_field()
    }
}

impl<D: Dynamics + ?Sized> Dynamics for &D {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn derivative(&self, state: &[f64]) -> Vec<f64> {
        (**self).derivative(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_dynamics_evaluates_closure() {
        let d = FnDynamics::new(2, |s: &[f64]| vec![s[1], -2.0 * s[0]]);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.derivative(&[1.0, 3.0]), vec![3.0, -2.0]);
        assert!(format!("{d:?}").contains("dim"));
    }

    #[test]
    fn expr_dynamics_matches_expressions() {
        let x = Expr::var(0);
        let y = Expr::var(1);
        let d = ExprDynamics::new(vec![y.clone(), -x.clone() - y.clone() * 0.1]);
        assert_eq!(d.dim(), 2);
        let out = d.derivative(&[2.0, -1.0]);
        assert!((out[0] + 1.0).abs() < 1e-15);
        assert!((out[1] - (-2.0 + 0.1)).abs() < 1e-15);
        assert_eq!(d.components().len(), 2);
    }

    #[test]
    fn reference_implements_dynamics() {
        let d = FnDynamics::new(1, |s: &[f64]| vec![-s[0]]);
        let r: &dyn Dynamics = &d;
        assert_eq!(r.dim(), 1);
        assert_eq!((&r).derivative(&[2.0]), vec![-2.0]);
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn expr_dynamics_rejects_out_of_range_variables() {
        let _ = ExprDynamics::new(vec![Expr::var(3)]);
    }
}
