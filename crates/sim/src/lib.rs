//! Closed-loop simulation: dynamics, ODE integrators, and traces.
//!
//! The barrier-certificate procedure is *simulation guided*: candidate
//! generator functions are fitted to constraints extracted from trajectories
//! of the closed-loop system (the paper's traces Φs and Φf).  This crate
//! provides the simulation substrate that replaces the paper's MATLAB®
//! environment:
//!
//! * the [`Dynamics`] trait describing an autonomous vector field `ẋ = f(x)`,
//! * implementations for plain closures ([`FnDynamics`]) and for symbolic
//!   expressions ([`ExprDynamics`]) so the *same* expression tree used in the
//!   SMT queries can also drive the simulator,
//! * fixed-step explicit integrators (Euler, midpoint, classic RK4) and an
//!   adaptive Runge–Kutta–Fehlberg 4(5) integrator ([`Integrator`]),
//! * the [`Trace`] type storing time-stamped states, and
//! * a [`Simulator`] that wires it all together.
//!
//! With the `parallel` feature (on by default), batches of traces from
//! different initial states — which are embarrassingly parallel — can be
//! collected on worker threads via [`Simulator::simulate_batch_threaded`]
//! and [`Simulator::simulate_until_batch`], built on the order-preserving
//! [`parallel_map`] helper.
//!
//! # Examples
//!
//! ```
//! use nncps_sim::{FnDynamics, Integrator, Simulator};
//!
//! // Simulate the scalar system x' = -x for one second.
//! let dynamics = FnDynamics::new(1, |x: &[f64]| vec![-x[0]]);
//! let simulator = Simulator::new(Integrator::RungeKutta4, 0.01, 1.0);
//! let trace = simulator.simulate(&dynamics, &[1.0]);
//! let x_end = trace.final_state()[0];
//! assert!((x_end - (-1.0_f64).exp()).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamics;
mod integrator;
mod simulator;
mod trace;

pub use dynamics::{Dynamics, ExprDynamics, FnDynamics, SymbolicDynamics};
pub use integrator::Integrator;
pub use nncps_parallel::{effective_threads, parallel_map};
pub use simulator::Simulator;
pub use trace::{Sample, Trace};
