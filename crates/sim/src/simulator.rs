//! The `Simulator` driver that produces traces from dynamics.

use crate::{Dynamics, Integrator, Trace};

/// A fixed-horizon simulator producing [`Trace`]s of a [`Dynamics`] model.
///
/// # Examples
///
/// ```
/// use nncps_sim::{FnDynamics, Integrator, Simulator};
///
/// let dynamics = FnDynamics::new(2, |s: &[f64]| vec![s[1], -s[0]]);
/// let simulator = Simulator::new(Integrator::RungeKutta4, 0.05, 2.0);
/// let trace = simulator.simulate(&dynamics, &[1.0, 0.0]);
/// assert_eq!(trace.len(), 41); // initial sample + 40 steps
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    integrator: Integrator,
    dt: f64,
    duration: f64,
}

impl Simulator {
    /// Creates a simulator with the given scheme, step size, and horizon.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `duration` is not strictly positive.
    pub fn new(integrator: Integrator, dt: f64, duration: f64) -> Self {
        assert!(dt > 0.0, "step size must be positive");
        assert!(duration > 0.0, "duration must be positive");
        Simulator {
            integrator,
            dt,
            duration,
        }
    }

    /// The integration scheme in use.
    pub fn integrator(&self) -> Integrator {
        self.integrator
    }

    /// The fixed step size.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The simulation horizon.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of integration steps taken per simulation.
    pub fn num_steps(&self) -> usize {
        (self.duration / self.dt).round().max(1.0) as usize
    }

    /// Simulates from `initial_state` and records every step in a trace.
    ///
    /// # Panics
    ///
    /// Panics if the initial state dimension does not match the dynamics.
    pub fn simulate<D: Dynamics + ?Sized>(&self, dynamics: &D, initial_state: &[f64]) -> Trace {
        self.simulate_until(dynamics, initial_state, |_, _| false)
    }

    /// Simulates from `initial_state`, stopping early as soon as
    /// `stop(time, state)` returns `true` (the stopping sample is included).
    ///
    /// Early stopping is used by the barrier pipeline to truncate trajectories
    /// that leave the domain of interest, mirroring how the paper only uses
    /// samples inside `D`.
    ///
    /// # Panics
    ///
    /// Panics if the initial state dimension does not match the dynamics.
    pub fn simulate_until<D, F>(&self, dynamics: &D, initial_state: &[f64], mut stop: F) -> Trace
    where
        D: Dynamics + ?Sized,
        F: FnMut(f64, &[f64]) -> bool,
    {
        assert_eq!(
            initial_state.len(),
            dynamics.dim(),
            "initial state dimension must match the dynamics"
        );
        let mut trace = Trace::new(dynamics.dim());
        let mut state = initial_state.to_vec();
        let mut time = 0.0;
        trace.push(time, state.clone());
        if stop(time, &state) {
            return trace;
        }
        for _ in 0..self.num_steps() {
            state = self.integrator.step(dynamics, &state, self.dt);
            time += self.dt;
            trace.push(time, state.clone());
            if stop(time, &state) {
                break;
            }
        }
        trace
    }

    /// Simulates several initial states and returns one trace per state.
    pub fn simulate_batch<D: Dynamics + ?Sized>(
        &self,
        dynamics: &D,
        initial_states: &[Vec<f64>],
    ) -> Vec<Trace> {
        initial_states
            .iter()
            .map(|x0| self.simulate(dynamics, x0))
            .collect()
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new(Integrator::RungeKutta4, 0.01, 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnDynamics;

    fn decay() -> FnDynamics<impl Fn(&[f64]) -> Vec<f64>> {
        FnDynamics::new(1, |s: &[f64]| vec![-s[0]])
    }

    #[test]
    fn simulate_exponential_decay() {
        let sim = Simulator::new(Integrator::RungeKutta4, 0.01, 1.0);
        let trace = sim.simulate(&decay(), &[2.0]);
        assert_eq!(trace.len(), sim.num_steps() + 1);
        assert!((trace.final_state()[0] - 2.0 * (-1.0_f64).exp()).abs() < 1e-6);
        assert!((trace.duration() - 1.0).abs() < 1e-9);
        assert_eq!(sim.integrator(), Integrator::RungeKutta4);
        assert_eq!(sim.dt(), 0.01);
        assert_eq!(sim.duration(), 1.0);
    }

    #[test]
    fn early_stopping_truncates_trace() {
        let sim = Simulator::new(Integrator::Euler, 0.1, 10.0);
        let trace = sim.simulate_until(&decay(), &[1.0], |_, s| s[0] < 0.5);
        assert!(trace.len() < sim.num_steps() + 1);
        assert!(trace.final_state()[0] < 0.5);
        // Stop predicate true at the initial state keeps only that sample.
        let immediate = sim.simulate_until(&decay(), &[0.1], |_, s| s[0] < 0.5);
        assert_eq!(immediate.len(), 1);
    }

    #[test]
    fn batch_simulation_produces_one_trace_per_start() {
        let sim = Simulator::new(Integrator::RungeKutta4, 0.1, 1.0);
        let traces = sim.simulate_batch(&decay(), &[vec![1.0], vec![2.0], vec![-1.0]]);
        assert_eq!(traces.len(), 3);
        assert!(traces[1].final_state()[0] > traces[0].final_state()[0]);
        assert!(traces[2].final_state()[0] < 0.0);
    }

    #[test]
    fn default_simulator_is_reasonable() {
        let sim = Simulator::default();
        assert_eq!(sim.integrator(), Integrator::RungeKutta4);
        assert_eq!(sim.num_steps(), 1000);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn zero_dt_panics() {
        let _ = Simulator::new(Integrator::Euler, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_panics() {
        let _ = Simulator::new(Integrator::Euler, 0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "initial state dimension")]
    fn wrong_initial_state_panics() {
        let _ = Simulator::default().simulate(&decay(), &[1.0, 2.0]);
    }
}
