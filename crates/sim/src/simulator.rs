//! The `Simulator` driver that produces traces from dynamics.

use crate::{Dynamics, Integrator, Trace};
use nncps_parallel::{Budget, ExhaustionReason};

/// A fixed-horizon simulator producing [`Trace`]s of a [`Dynamics`] model.
///
/// # Examples
///
/// ```
/// use nncps_sim::{FnDynamics, Integrator, Simulator};
///
/// let dynamics = FnDynamics::new(2, |s: &[f64]| vec![s[1], -s[0]]);
/// let simulator = Simulator::new(Integrator::RungeKutta4, 0.05, 2.0);
/// let trace = simulator.simulate(&dynamics, &[1.0, 0.0]);
/// assert_eq!(trace.len(), 41); // initial sample + 40 steps
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    integrator: Integrator,
    dt: f64,
    duration: f64,
}

impl Simulator {
    /// Creates a simulator with the given scheme, step size, and horizon.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `duration` is not strictly positive.
    pub fn new(integrator: Integrator, dt: f64, duration: f64) -> Self {
        assert!(dt > 0.0, "step size must be positive");
        assert!(duration > 0.0, "duration must be positive");
        Simulator {
            integrator,
            dt,
            duration,
        }
    }

    /// The integration scheme in use.
    pub fn integrator(&self) -> Integrator {
        self.integrator
    }

    /// The fixed step size.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The simulation horizon.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of integration steps taken per simulation.
    pub fn num_steps(&self) -> usize {
        (self.duration / self.dt).round().max(1.0) as usize
    }

    /// Simulates from `initial_state` and records every step in a trace.
    ///
    /// # Panics
    ///
    /// Panics if the initial state dimension does not match the dynamics.
    pub fn simulate<D: Dynamics + ?Sized>(&self, dynamics: &D, initial_state: &[f64]) -> Trace {
        self.simulate_until(dynamics, initial_state, |_, _| false)
    }

    /// Simulates from `initial_state`, stopping early as soon as
    /// `stop(time, state)` returns `true` (the stopping sample is included).
    ///
    /// Early stopping is used by the barrier pipeline to truncate trajectories
    /// that leave the domain of interest, mirroring how the paper only uses
    /// samples inside `D`.
    ///
    /// # Panics
    ///
    /// Panics if the initial state dimension does not match the dynamics.
    pub fn simulate_until<D, F>(&self, dynamics: &D, initial_state: &[f64], mut stop: F) -> Trace
    where
        D: Dynamics + ?Sized,
        F: FnMut(f64, &[f64]) -> bool,
    {
        assert_eq!(
            initial_state.len(),
            dynamics.dim(),
            "initial state dimension must match the dynamics"
        );
        let mut trace = Trace::new(dynamics.dim());
        let mut state = initial_state.to_vec();
        let mut time = 0.0;
        trace.push(time, state.clone());
        if stop(time, &state) {
            return trace;
        }
        for _ in 0..self.num_steps() {
            nncps_fault::panic_point(nncps_fault::SITE_SIM_STEP);
            state = self.integrator.step(dynamics, &state, self.dt);
            if let Some(first) = state.first_mut() {
                // Fault site: an armed `nan` fault corrupts one state
                // component; the domain stop predicate then truncates the
                // trace, which is exactly how a real NaN escapes integration.
                *first = nncps_fault::corrupt_f64(nncps_fault::SITE_SIM_STEP, *first);
            }
            time += self.dt;
            trace.push(time, state.clone());
            if stop(time, &state) {
                break;
            }
        }
        trace
    }

    /// Simulates several initial states and returns one trace per state.
    pub fn simulate_batch<D: Dynamics + ?Sized>(
        &self,
        dynamics: &D,
        initial_states: &[Vec<f64>],
    ) -> Vec<Trace> {
        initial_states
            .iter()
            .map(|x0| self.simulate(dynamics, x0))
            .collect()
    }

    /// Simulates several initial states on up to `threads` worker threads
    /// (`0` = one per available core), returning one trace per state in
    /// input order.
    ///
    /// Traces from distinct initial states are independent, so the result is
    /// identical to [`Simulator::simulate_batch`] for every thread count;
    /// without the `parallel` feature this runs sequentially.
    pub fn simulate_batch_threaded<D>(
        &self,
        dynamics: &D,
        initial_states: &[Vec<f64>],
        threads: usize,
    ) -> Vec<Trace>
    where
        D: Dynamics + Sync + ?Sized,
    {
        crate::parallel_map(initial_states, threads, |x0| self.simulate(dynamics, x0))
    }

    /// Batch version of [`Simulator::simulate_until`]: simulates every
    /// initial state with the same early-stopping predicate on up to
    /// `threads` worker threads (`0` = one per available core), preserving
    /// input order.
    ///
    /// This is the entry point the verification pipeline uses to collect the
    /// seed traces Φs: the predicate truncates trajectories that leave the
    /// domain of interest `D`, and the batch is collected in parallel.
    pub fn simulate_until_batch<D, F>(
        &self,
        dynamics: &D,
        initial_states: &[Vec<f64>],
        stop: F,
        threads: usize,
    ) -> Vec<Trace>
    where
        D: Dynamics + Sync + ?Sized,
        F: Fn(f64, &[f64]) -> bool + Sync,
    {
        crate::parallel_map(initial_states, threads, |x0| {
            self.simulate_until(dynamics, x0, &stop)
        })
    }

    /// Budget-governed version of [`Simulator::simulate_until_batch`].
    ///
    /// The batch polls the [`Budget`] cooperatively: once the budget trips
    /// (cancellation, an expired wall-clock deadline, or fuel exhausted by
    /// an earlier stage), every in-flight trace stops at its next step head
    /// and the whole batch degrades to `Err` with the machine-readable
    /// [`ExhaustionReason`] — partial traces are discarded, never returned.
    /// With an untripped budget the result is bit-identical to the
    /// ungoverned batch at every thread count.
    pub fn simulate_until_batch_governed<D, F>(
        &self,
        dynamics: &D,
        initial_states: &[Vec<f64>],
        stop: F,
        threads: usize,
        budget: &Budget,
    ) -> Result<Vec<Trace>, ExhaustionReason>
    where
        D: Dynamics + Sync + ?Sized,
        F: Fn(f64, &[f64]) -> bool + Sync,
    {
        if let Some(reason) = budget.check() {
            return Err(reason);
        }
        // Fold the budget poll into the stop predicate so a tripped budget
        // truncates every worker's trace at its next integration step; the
        // truncated traces are thrown away below, so truncation never leaks
        // into results.
        let traces = crate::parallel_map(initial_states, threads, |x0| {
            self.simulate_until(dynamics, x0, |t, s| stop(t, s) || budget.check().is_some())
        });
        match budget.check() {
            Some(reason) => Err(reason),
            None => Ok(traces),
        }
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::new(Integrator::RungeKutta4, 0.01, 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnDynamics;

    fn decay() -> FnDynamics<impl Fn(&[f64]) -> Vec<f64>> {
        FnDynamics::new(1, |s: &[f64]| vec![-s[0]])
    }

    #[test]
    fn simulate_exponential_decay() {
        let sim = Simulator::new(Integrator::RungeKutta4, 0.01, 1.0);
        let trace = sim.simulate(&decay(), &[2.0]);
        assert_eq!(trace.len(), sim.num_steps() + 1);
        assert!((trace.final_state()[0] - 2.0 * (-1.0_f64).exp()).abs() < 1e-6);
        assert!((trace.duration() - 1.0).abs() < 1e-9);
        assert_eq!(sim.integrator(), Integrator::RungeKutta4);
        assert_eq!(sim.dt(), 0.01);
        assert_eq!(sim.duration(), 1.0);
    }

    #[test]
    fn early_stopping_truncates_trace() {
        let sim = Simulator::new(Integrator::Euler, 0.1, 10.0);
        let trace = sim.simulate_until(&decay(), &[1.0], |_, s| s[0] < 0.5);
        assert!(trace.len() < sim.num_steps() + 1);
        assert!(trace.final_state()[0] < 0.5);
        // Stop predicate true at the initial state keeps only that sample.
        let immediate = sim.simulate_until(&decay(), &[0.1], |_, s| s[0] < 0.5);
        assert_eq!(immediate.len(), 1);
    }

    #[test]
    fn batch_simulation_produces_one_trace_per_start() {
        let sim = Simulator::new(Integrator::RungeKutta4, 0.1, 1.0);
        let traces = sim.simulate_batch(&decay(), &[vec![1.0], vec![2.0], vec![-1.0]]);
        assert_eq!(traces.len(), 3);
        assert!(traces[1].final_state()[0] > traces[0].final_state()[0]);
        assert!(traces[2].final_state()[0] < 0.0);
    }

    #[test]
    fn threaded_batch_matches_sequential_batch() {
        let sim = Simulator::new(Integrator::RungeKutta4, 0.05, 2.0);
        let starts: Vec<Vec<f64>> = (0..17).map(|i| vec![i as f64 * 0.3 - 2.0]).collect();
        let sequential = sim.simulate_batch(&decay(), &starts);
        for threads in [0, 1, 4] {
            let threaded = sim.simulate_batch_threaded(&decay(), &starts, threads);
            assert_eq!(threaded, sequential);
        }
    }

    #[test]
    fn until_batch_applies_the_predicate_to_every_trace() {
        let sim = Simulator::new(Integrator::Euler, 0.1, 10.0);
        let starts = vec![vec![1.0], vec![2.0], vec![4.0]];
        let traces = sim.simulate_until_batch(&decay(), &starts, |_, s| s[0] < 0.5, 0);
        assert_eq!(traces.len(), 3);
        for (trace, start) in traces.iter().zip(&starts) {
            assert_eq!(trace.iter().next().unwrap().1[0], start[0]);
            assert!(trace.final_state()[0] < 0.5);
            assert!(trace.len() < sim.num_steps() + 1);
        }
    }

    #[test]
    fn default_simulator_is_reasonable() {
        let sim = Simulator::default();
        assert_eq!(sim.integrator(), Integrator::RungeKutta4);
        assert_eq!(sim.num_steps(), 1000);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn zero_dt_panics() {
        let _ = Simulator::new(Integrator::Euler, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_panics() {
        let _ = Simulator::new(Integrator::Euler, 0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "initial state dimension")]
    fn wrong_initial_state_panics() {
        let _ = Simulator::default().simulate(&decay(), &[1.0, 2.0]);
    }
}
