//! Deterministic fault injection: hand-rolled failpoints for rehearsing the
//! workspace's failure paths.
//!
//! A **fault site** is a named hook compiled into a risky seam of the
//! pipeline (solver box pop, LP pivot, tape compilation, warm-start cache
//! insert, simulator step).  With the `enabled` feature off — the default —
//! every hook is an empty `#[inline]` function and the binary carries no
//! fault machinery at all.  With it on, sites can be **armed** with a fault
//! (a panic, a spurious NaN, or forced fuel exhaustion) and a deterministic
//! trigger: fire on the `nth` hit of the site, fire always, or fire per-hit
//! with a seeded ChaCha8 probability.
//!
//! Configuration is offline-friendly: the `NNCPS_FAULTS` environment
//! variable (`site=kind[:nth=N][:p=P][:seed=S]`, comma-separated), an
//! `NNCPS_FAULTS_FILE` TOML manifest of `[[fault]]` tables, or the
//! programmatic [`arm`]/[`disarm_all`] API used by the chaos test suites.
//!
//! With single-threaded execution the `nth` trigger is fully
//! deterministic: the same build hits the same site in the same order, so
//! one seeded fault lands in exactly one family member — which is what the
//! CI chaos stage relies on.
//!
//! # Examples
//!
//! ```
//! use nncps_fault::{arm, disarm_all, panic_point, FaultKind, FaultSpec, Trigger};
//!
//! // Without the `enabled` feature this is all inert.
//! arm("example.site", FaultSpec::new(FaultKind::Panic, Trigger::Nth(1)));
//! if cfg!(feature = "enabled") {
//!     assert!(std::panic::catch_unwind(|| panic_point("example.site")).is_err());
//! } else {
//!     panic_point("example.site"); // no-op
//! }
//! disarm_all();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Fault site: the δ-SAT solver's branch-and-prune box pop.
pub const SITE_SOLVER_BOX_POP: &str = "solver.box_pop";
/// Fault site: the simplex LP pivot.
pub const SITE_LP_PIVOT: &str = "lp.pivot";
/// Fault site: expression-to-tape compilation.
pub const SITE_TAPE_COMPILE: &str = "tape.compile";
/// Fault site: warm-start cache insertion.
pub const SITE_WARMSTART_INSERT: &str = "warmstart.insert";
/// Fault site: one simulator integration step.
pub const SITE_SIM_STEP: &str = "sim.step";

/// Every registered fault site, for docs and validation.
pub const ALL_SITES: [&str; 5] = [
    SITE_SOLVER_BOX_POP,
    SITE_LP_PIVOT,
    SITE_TAPE_COMPILE,
    SITE_WARMSTART_INSERT,
    SITE_SIM_STEP,
];

/// What an armed fault injects when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (exercises panic isolation).
    Panic,
    /// Replace the site's value with a spurious NaN.
    Nan,
    /// Force the governing budget into fuel exhaustion.
    FuelExhaustion,
}

impl FaultKind {
    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "panic" => Ok(FaultKind::Panic),
            "nan" => Ok(FaultKind::Nan),
            "fuel" => Ok(FaultKind::FuelExhaustion),
            other => Err(format!(
                "unknown fault kind `{other}` (expected panic, nan, or fuel)"
            )),
        }
    }
}

/// When an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every hit of the site.
    Always,
    /// Fire exactly once, on the `n`-th hit (1-based) of the site.
    Nth(u64),
    /// Fire independently per hit with probability `p`, driven by a
    /// ChaCha8 stream seeded with `seed` (reproducible per arm call).
    Probability {
        /// Per-hit firing probability in `[0, 1]`.
        p: f64,
        /// RNG seed; the stream restarts every time the site is armed.
        seed: u64,
    },
}

/// A fault to arm at a site: what to inject and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What the fault injects.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: Trigger,
}

impl FaultSpec {
    /// Bundles a kind and a trigger.
    pub fn new(kind: FaultKind, trigger: Trigger) -> Self {
        FaultSpec { kind, trigger }
    }
}

/// Parses one `NNCPS_FAULTS` entry: `site=kind[:nth=N][:p=P][:seed=S]`.
fn parse_entry(entry: &str) -> Result<(String, FaultSpec), String> {
    let mut parts = entry.split(':');
    let head = parts.next().unwrap_or("");
    let (site, kind) = head
        .split_once('=')
        .ok_or_else(|| format!("fault entry `{entry}` is missing `site=kind`"))?;
    if site.is_empty() {
        return Err(format!("fault entry `{entry}` has an empty site"));
    }
    let kind = FaultKind::parse(kind)?;
    let mut nth: Option<u64> = None;
    let mut p: Option<f64> = None;
    let mut seed: u64 = 0;
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("malformed fault option `{part}` in `{entry}`"))?;
        match key {
            "nth" => {
                nth =
                    Some(value.parse().map_err(|_| {
                        format!("fault option nth=`{value}` is not a positive integer")
                    })?)
            }
            "p" => {
                p = Some(
                    value
                        .parse()
                        .map_err(|_| format!("fault option p=`{value}` is not a number"))?,
                )
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| format!("fault option seed=`{value}` is not an integer"))?
            }
            other => return Err(format!("unknown fault option `{other}` in `{entry}`")),
        }
    }
    let trigger = match (nth, p) {
        (Some(_), Some(_)) => {
            return Err(format!("fault entry `{entry}` sets both nth and p"));
        }
        (Some(0), None) => return Err(format!("fault entry `{entry}`: nth is 1-based")),
        (Some(n), None) => Trigger::Nth(n),
        (None, Some(p)) if (0.0..=1.0).contains(&p) => Trigger::Probability { p, seed },
        (None, Some(p)) => return Err(format!("fault probability {p} is outside [0, 1]")),
        (None, None) => Trigger::Always,
    };
    Ok((site.to_string(), FaultSpec::new(kind, trigger)))
}

/// Parses a minimal TOML manifest of `[[fault]]` tables, e.g.
///
/// ```toml
/// [[fault]]
/// site = "solver.box_pop"
/// kind = "panic"
/// nth = 3
/// ```
///
/// Supported keys per table: `site` (string), `kind` (string), `nth`
/// (integer), `p` (float), `seed` (integer).
fn parse_toml(text: &str) -> Result<Vec<(String, FaultSpec)>, String> {
    #[derive(Default)]
    struct Partial {
        site: Option<String>,
        kind: Option<String>,
        nth: Option<u64>,
        p: Option<f64>,
        seed: u64,
        seen: bool,
    }
    impl Partial {
        fn finish(&mut self) -> Result<Option<(String, FaultSpec)>, String> {
            if !self.seen {
                return Ok(None);
            }
            let site = self.site.take().ok_or("a [[fault]] table has no `site`")?;
            let kind = self.kind.take().ok_or("a [[fault]] table has no `kind`")?;
            let mut entry = format!("{site}={kind}");
            if let Some(n) = self.nth.take() {
                entry.push_str(&format!(":nth={n}"));
            }
            if let Some(p) = self.p.take() {
                entry.push_str(&format!(":p={p}:seed={}", self.seed));
            }
            self.seed = 0;
            self.seen = false;
            parse_entry(&entry).map(Some)
        }
    }
    let mut faults = Vec::new();
    let mut current = Partial::default();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[fault]]" {
            if let Some(done) = current.finish()? {
                faults.push(done);
            }
            current.seen = true;
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("malformed fault manifest line `{line}`"))?;
        if !current.seen {
            return Err(format!("`{line}` appears outside a [[fault]] table"));
        }
        let key = key.trim();
        let value = value.trim();
        let unquote = |v: &str| v.trim_matches('"').to_string();
        match key {
            "site" => current.site = Some(unquote(value)),
            "kind" => current.kind = Some(unquote(value)),
            "nth" => {
                current.nth = Some(
                    value
                        .parse()
                        .map_err(|_| format!("fault manifest nth=`{value}` is not an integer"))?,
                )
            }
            "p" => {
                current.p = Some(
                    value
                        .parse()
                        .map_err(|_| format!("fault manifest p=`{value}` is not a number"))?,
                )
            }
            "seed" => {
                current.seed = value
                    .parse()
                    .map_err(|_| format!("fault manifest seed=`{value}` is not an integer"))?
            }
            other => return Err(format!("unknown fault manifest key `{other}`")),
        }
    }
    if let Some(done) = current.finish()? {
        faults.push(done);
    }
    Ok(faults)
}

#[cfg(feature = "enabled")]
mod active {
    use super::{parse_entry, parse_toml, FaultKind, FaultSpec, Trigger};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    struct Armed {
        spec: FaultSpec,
        hits: u64,
        fired: bool,
        rng: Option<ChaCha8Rng>,
    }

    impl Armed {
        fn new(spec: FaultSpec) -> Self {
            let rng = match spec.trigger {
                Trigger::Probability { seed, .. } => Some(ChaCha8Rng::seed_from_u64(seed)),
                _ => None,
            };
            Armed {
                spec,
                hits: 0,
                fired: false,
                rng,
            }
        }
    }

    fn registry() -> &'static Mutex<HashMap<String, Armed>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Armed>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(text) = std::env::var("NNCPS_FAULTS") {
                for entry in text.split(',').filter(|e| !e.trim().is_empty()) {
                    let (site, spec) =
                        parse_entry(entry.trim()).unwrap_or_else(|e| panic!("NNCPS_FAULTS: {e}"));
                    map.insert(site, Armed::new(spec));
                }
            }
            if let Ok(path) = std::env::var("NNCPS_FAULTS_FILE") {
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("NNCPS_FAULTS_FILE: cannot read {path}: {e}"));
                for (site, spec) in
                    parse_toml(&text).unwrap_or_else(|e| panic!("NNCPS_FAULTS_FILE: {e}"))
                {
                    map.insert(site, Armed::new(spec));
                }
            }
            Mutex::new(map)
        })
    }

    /// Counts a hit of `(site, kind)` and reports whether the armed fault
    /// fires.  Kind-mismatched hooks at the same site do not consume hits.
    fn triggered(site: &str, kind: FaultKind) -> bool {
        let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let Some(armed) = map.get_mut(site) else {
            return false;
        };
        if armed.spec.kind != kind {
            return false;
        }
        armed.hits += 1;
        match armed.spec.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => {
                if !armed.fired && armed.hits == n {
                    armed.fired = true;
                    true
                } else {
                    false
                }
            }
            Trigger::Probability { p, .. } => {
                let rng = armed.rng.as_mut().expect("probability faults carry an rng");
                rng.gen::<f64>() < p
            }
        }
    }

    /// Passes a panic fault site: panics iff an armed `panic` fault fires.
    pub fn panic_point(site: &str) {
        if triggered(site, FaultKind::Panic) {
            panic!("injected panic at fault site `{site}`");
        }
    }

    /// Passes a NaN fault site carrying `value`: NaN iff an armed `nan`
    /// fault fires, `value` unchanged otherwise.
    pub fn corrupt_f64(site: &str, value: f64) -> f64 {
        if triggered(site, FaultKind::Nan) {
            f64::NAN
        } else {
            value
        }
    }

    /// Passes a fuel-exhaustion fault site: whether an armed `fuel` fault
    /// fired (the caller forces its governing budget into exhaustion).
    pub fn fuel_exhaustion(site: &str) -> bool {
        triggered(site, FaultKind::FuelExhaustion)
    }

    /// Arms `site` with `spec`, replacing any existing fault there.
    pub fn arm(site: &str, spec: FaultSpec) {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(site.to_string(), Armed::new(spec));
    }

    /// Disarms `site`.
    pub fn disarm(site: &str) {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(site);
    }

    /// Disarms every site.
    pub fn disarm_all() {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Arms every fault in a TOML manifest (see the crate docs for the
    /// format); returns how many were armed.
    pub fn configure_from_toml_str(text: &str) -> Result<usize, String> {
        let faults = parse_toml(text)?;
        let count = faults.len();
        let mut map = registry().lock().unwrap_or_else(PoisonError::into_inner);
        for (site, spec) in faults {
            map.insert(site, Armed::new(spec));
        }
        Ok(count)
    }

    /// Number of trigger-counted hits at `site`.
    pub fn hits(site: &str) -> u64 {
        registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(site)
            .map_or(0, |armed| armed.hits)
    }
}

#[cfg(feature = "enabled")]
pub use active::*;

/// Passes a panic fault site.  Panics if an armed `panic` fault fires; a
/// no-op otherwise (and always, without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn panic_point(_site: &str) {}

/// Passes a NaN fault site carrying `value`.  Returns NaN if an armed
/// `nan` fault fires; returns `value` unchanged otherwise (and always,
/// without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn corrupt_f64(_site: &str, value: f64) -> f64 {
    value
}

/// Passes a fuel-exhaustion fault site.  Returns whether an armed `fuel`
/// fault fired (always `false` without the `enabled` feature); the caller
/// forces its governing budget into exhaustion on `true`.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn fuel_exhaustion(_site: &str) -> bool {
    false
}

/// Arms `site` with `spec`, replacing any existing fault there.  A no-op
/// without the `enabled` feature.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn arm(_site: &str, _spec: FaultSpec) {}

/// Disarms `site`.  A no-op without the `enabled` feature.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn disarm(_site: &str) {}

/// Disarms every site.  A no-op without the `enabled` feature.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn disarm_all() {}

/// Arms every fault in a TOML manifest (see the crate docs for the
/// format).  Parses (and reports errors) even without the `enabled`
/// feature, but arms nothing.
#[cfg(not(feature = "enabled"))]
pub fn configure_from_toml_str(text: &str) -> Result<usize, String> {
    parse_toml(text).map(|faults| faults.len())
}

/// Number of trigger-counted hits at `site` (always 0 without the
/// `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn hits(_site: &str) -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_grammar_parses_and_rejects() {
        let (site, spec) = parse_entry("solver.box_pop=panic:nth=3").unwrap();
        assert_eq!(site, "solver.box_pop");
        assert_eq!(spec, FaultSpec::new(FaultKind::Panic, Trigger::Nth(3)));
        let (_, spec) = parse_entry("sim.step=nan:p=0.25:seed=9").unwrap();
        assert_eq!(spec.trigger, Trigger::Probability { p: 0.25, seed: 9 });
        let (_, spec) = parse_entry("lp.pivot=fuel").unwrap();
        assert_eq!(
            spec,
            FaultSpec::new(FaultKind::FuelExhaustion, Trigger::Always)
        );

        for bad in [
            "no-kind",
            "=panic",
            "s=explode",
            "s=panic:nth=0",
            "s=panic:nth=x",
            "s=nan:p=1.5",
            "s=nan:nth=1:p=0.5",
            "s=panic:wat=1",
            "s=panic:junk",
        ] {
            assert!(parse_entry(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn toml_subset_parses_and_rejects() {
        let manifest = r#"
            # chaos plan
            [[fault]]
            site = "solver.box_pop"
            kind = "panic"
            nth = 12

            [[fault]]
            site = "sim.step"
            kind = "nan"
            p = 0.5
            seed = 7
        "#;
        let faults = parse_toml(manifest).unwrap();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].0, "solver.box_pop");
        assert_eq!(
            faults[0].1,
            FaultSpec::new(FaultKind::Panic, Trigger::Nth(12))
        );
        assert_eq!(
            faults[1].1,
            FaultSpec::new(FaultKind::Nan, Trigger::Probability { p: 0.5, seed: 7 })
        );
        assert!(parse_toml("site = \"x\"\n").is_err());
        assert!(parse_toml("[[fault]]\nsite = \"x\"\n").is_err());
        assert!(parse_toml("[[fault]]\nkind = \"panic\"\n").is_err());
        assert!(parse_toml("[[fault]]\nsite = \"x\"\nkind = \"panic\"\nnth = z\n").is_err());
        assert!(parse_toml("[[fault]]\nsite = \"x\"\nkind = \"panic\"\nbogus = 1\n").is_err());
        assert!(parse_toml("").unwrap().is_empty());
    }

    #[test]
    fn disabled_hooks_are_inert() {
        if cfg!(feature = "enabled") {
            return;
        }
        arm(
            SITE_SIM_STEP,
            FaultSpec::new(FaultKind::Panic, Trigger::Always),
        );
        panic_point(SITE_SIM_STEP);
        assert_eq!(corrupt_f64(SITE_SIM_STEP, 1.5), 1.5);
        assert!(!fuel_exhaustion(SITE_SIM_STEP));
        assert_eq!(hits(SITE_SIM_STEP), 0);
        assert_eq!(configure_from_toml_str("").unwrap(), 0);
        disarm(SITE_SIM_STEP);
        disarm_all();
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;

        #[test]
        fn nth_trigger_fires_exactly_once() {
            let site = "test.nth_trigger";
            arm(site, FaultSpec::new(FaultKind::Panic, Trigger::Nth(3)));
            panic_point(site);
            panic_point(site);
            let caught = std::panic::catch_unwind(|| panic_point(site));
            let payload = *caught.unwrap_err().downcast::<String>().unwrap();
            assert_eq!(payload, format!("injected panic at fault site `{site}`"));
            // Fired once; later hits pass.
            panic_point(site);
            assert_eq!(hits(site), 4);
            disarm(site);
        }

        #[test]
        fn kind_mismatch_neither_fires_nor_counts() {
            let site = "test.kind_mismatch";
            arm(site, FaultSpec::new(FaultKind::Nan, Trigger::Always));
            panic_point(site); // different kind: inert
            assert!(!fuel_exhaustion(site));
            assert_eq!(hits(site), 0);
            assert!(corrupt_f64(site, 2.0).is_nan());
            assert_eq!(hits(site), 1);
            disarm(site);
        }

        #[test]
        fn probability_trigger_is_seed_deterministic() {
            let site = "test.probability";
            let run = |seed: u64| -> Vec<bool> {
                arm(
                    site,
                    FaultSpec::new(
                        FaultKind::FuelExhaustion,
                        Trigger::Probability { p: 0.5, seed },
                    ),
                );
                (0..32).map(|_| fuel_exhaustion(site)).collect()
            };
            let a = run(42);
            let b = run(42);
            assert_eq!(a, b);
            assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
            disarm(site);
        }

        #[test]
        fn toml_configuration_arms_sites() {
            let manifest = "[[fault]]\nsite = \"test.toml_armed\"\nkind = \"fuel\"\n";
            assert_eq!(configure_from_toml_str(manifest).unwrap(), 1);
            assert!(fuel_exhaustion("test.toml_armed"));
            disarm("test.toml_armed");
        }
    }
}
