//! Meta-crate for the reproduction of *Reasoning about Safety of
//! Learning-Enabled Components in Autonomous Cyber-physical Systems*
//! (Tuncali, Kapinski, Ito, Deshmukh — DAC 2018).
//!
//! This crate re-exports every workspace crate under one roof and owns the
//! end-to-end examples (`examples/`) and cross-crate integration tests
//! (`tests/`). See the repository `README.md` for the paper-step → module
//! map and `ARCHITECTURE.md` for the pipeline design.
//!
//! The working vocabulary — requests, sessions, configs, budgets, the
//! scenario registry, the serve engine — is re-exported at the root, so one
//! `use nncps::...` line covers the common flows.
//!
//! # Examples
//!
//! ```
//! use nncps::{
//!     ClosedLoopSystem, SafetySpec, VerificationRequest, VerificationSession,
//! };
//! use nncps::expr::Expr;
//! use nncps::interval::IntervalBox;
//!
//! // Certify a stable linear system (the smoke test from `nncps_barrier`).
//! let system = ClosedLoopSystem::new(
//!     vec![-Expr::var(0), -Expr::var(1)],
//!     SafetySpec::rectangular(
//!         IntervalBox::from_bounds(&[(-0.5, 0.5), (-0.5, 0.5)]),
//!         IntervalBox::from_bounds(&[(-3.0, 3.0), (-3.0, 3.0)]),
//!     ),
//! );
//! let session = VerificationSession::new();
//! let outcome = session.verify(&VerificationRequest::over(&system));
//! assert!(outcome.is_certified());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nncps_barrier as barrier;
pub use nncps_cmaes as cmaes;
pub use nncps_deltasat as deltasat;
pub use nncps_dubins as dubins;
pub use nncps_expr as expr;
pub use nncps_interval as interval;
pub use nncps_linalg as linalg;
pub use nncps_lp as lp;
pub use nncps_nn as nn;
pub use nncps_scenarios as scenarios;
pub use nncps_sim as sim;

// The one-import facade: the types a typical caller needs, at the root.
pub use nncps_barrier::{
    BarrierCertificate, Budget, ClosedLoopSystem, ConfigError, DiskStore, ExhaustionReason,
    SafetySpec, VerificationConfig, VerificationConfigBuilder, VerificationOutcome,
    VerificationRequest, VerificationSession, Verifier, WarmStart,
};
pub use nncps_scenarios::{
    run_batch, run_scenario, run_sweep, BatchOptions, BatchReport, Family, Registry, Scenario,
    ServeEngine, ServeOptions, SweepOptions,
};
