//! `nncps-serve` — the resident verification server.
//!
//! A thin TCP shim over [`nncps_scenarios::ServeEngine`]: one thread per
//! connection, one request line in, one or more response lines out (see the
//! protocol grammar in the `serve` module docs and ARCHITECTURE.md).  The
//! engine owns everything interesting — the family catalogue, the shared
//! verification session, the worker pool, and the optional on-disk
//! warm-start store — so this binary is only sockets and lines.
//!
//! ```text
//! cargo run --release --bin nncps-serve -- --store /var/cache/nncps
//! cargo run --release --bin nncps-serve -- --listen 127.0.0.1:7171
//! cargo run --release --bin nncps-serve -- --manifest extra-families.toml
//!
//! # Then, from a client:
//! cargo run --release --bin nncps-batch -- --connect 127.0.0.1:7171 --family all
//! ```
//!
//! The first stdout line is always `nncps-serve: listening on ADDR` (flushed
//! before the first accept), so scripts can bind port `0` and scrape the
//! ephemeral address.  A `shutdown` request stops the accept loop, drains
//! in-flight work, and exits cleanly; killing the process with SIGTERM is
//! also safe at any time because store writes are staged in a scratch
//! directory and published with atomic renames — a half-written entry never
//! becomes visible.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nncps_scenarios::{
    builtin_families, families_from_toml_str, Directive, Registry, ServeEngine, ServeOptions,
};

const USAGE: &str = "usage: nncps-serve [--listen ADDR] [--store DIR] [--threads N] \
                     [--manifest FILE.toml]";

#[derive(Debug)]
struct Args {
    listen: String,
    store: Option<String>,
    threads: usize,
    manifest: Option<String>,
}

/// Parses the CLI; `Ok(None)` means `--help` was requested.
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        // Port 0 binds an ephemeral port; the scraped banner line is the
        // contract, not a fixed port.
        listen: "127.0.0.1:0".to_string(),
        store: None,
        threads: 0,
        manifest: None,
    };
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--store" => args.store = Some(value("--store")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?
            }
            "--manifest" => args.manifest = Some(value("--manifest")?),
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Some(args))
}

/// One connection: read request lines, write response lines, stop on EOF or
/// a `shutdown` request (which also stops the accept loop).
fn serve_connection(engine: &ServeEngine, stream: TcpStream, shutdown: &AtomicBool) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".to_string());
    let reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => {
            eprintln!("nncps-serve: cannot clone stream of {peer}: {e}");
            return;
        }
    });
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            // A vanished client is normal teardown, not a server error.
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let mut broken = false;
        let directive = engine.handle_line(&line, &mut |reply| {
            // Keep verifying even if the client hangs up mid-stream: the
            // results still land in the shared caches for the next client.
            if !broken {
                broken = writeln!(writer, "{reply}").is_err() || writer.flush().is_err();
            }
        });
        if directive == Directive::Shutdown {
            shutdown.store(true, Ordering::SeqCst);
            break;
        }
        if broken {
            break;
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let mut families = builtin_families();
    if let Some(path) = &args.manifest {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {path}: {e}"))?;
        families.extend(
            families_from_toml_str(&text, &Registry::builtin()).map_err(|e| e.to_string())?,
        );
    }
    let engine = Arc::new(ServeEngine::new(
        families,
        &ServeOptions {
            threads: args.threads,
            store: args.store.as_ref().map(std::path::PathBuf::from),
        },
    )?);

    let listener =
        TcpListener::bind(&args.listen).map_err(|e| format!("cannot bind {}: {e}", args.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // The scrapeable banner: always the first stdout line, flushed before
    // the first accept so a spawning script never races it.
    println!("nncps-serve: listening on {addr}");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot flush banner: {e}"))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let engine = Arc::clone(&engine);
                let shutdown_flag = Arc::clone(&shutdown);
                let handle = std::thread::spawn(move || {
                    serve_connection(&engine, stream, &shutdown_flag);
                    // Unblock the accept loop so it observes the flag
                    // promptly instead of waiting for the next client.
                    if shutdown_flag.load(Ordering::SeqCst) {
                        let _ = TcpStream::connect(addr);
                    }
                });
                connections.push(handle);
            }
            Err(e) => eprintln!("nncps-serve: accept failed: {e}"),
        }
        // Reap finished handlers so a long-lived server does not
        // accumulate joined-but-unreaped threads.
        connections.retain(|handle| !handle.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
    eprintln!("nncps-serve: shutting down");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("nncps-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("nncps-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Option<Args>, String> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn arguments_parse_with_defaults_and_diagnostics() {
        let args = parse(&[]).unwrap().unwrap();
        assert_eq!(args.listen, "127.0.0.1:0");
        assert_eq!(args.threads, 0);
        assert!(args.store.is_none());

        let args = parse(&[
            "--listen",
            "127.0.0.1:7171",
            "--store",
            "/tmp/s",
            "--threads",
            "3",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(args.listen, "127.0.0.1:7171");
        assert_eq!(args.store.as_deref(), Some("/tmp/s"));
        assert_eq!(args.threads, 3);

        assert!(parse(&["--help"]).unwrap().is_none());
        let err = parse(&["--threads", "many"]).unwrap_err();
        assert!(err.contains("invalid --threads"), "{err}");
        let err = parse(&["--port", "1"]).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }
}
