//! `nncps-batch` — run the falsify→verify pipeline over a scenario registry
//! (or a generated scenario family) and emit a machine-readable JSON report.
//!
//! ```text
//! cargo run --release --bin nncps-batch                       # run + print report
//! cargo run --release --bin nncps-batch -- --list             # list scenarios
//! cargo run --release --bin nncps-batch -- --filter dubins    # name substring filter
//! cargo run --release --bin nncps-batch -- --manifest f.toml  # TOML registry
//! cargo run --release --bin nncps-batch -- --out report.json  # write full report
//! cargo run --release --bin nncps-batch -- --check SCENARIOS_expected.json
//! cargo run --release --bin nncps-batch -- --write-expected SCENARIOS_expected.json
//!
//! # Scenario-family sweeps (warm-start compilation caching shared across
//! # members; pass --cold to disable it):
//! cargo run --release --bin nncps-batch -- --list-families
//! cargo run --release --bin nncps-batch -- --family linear-ci-grid
//! cargo run --release --bin nncps-batch -- --family all --out sweep.json
//! ```
//!
//! `--check` exits nonzero on any verdict or witness-fingerprint drift
//! against the baseline; it is the CI scenario-regression gate.  Family runs
//! additionally gate on each family's pinned verdict *counts* (e.g.
//! "12 certified / 12 inconclusive") and exit nonzero on count drift.

use std::process::ExitCode;

use nncps_scenarios::{
    builtin_families, families_from_toml_str, run_batch, run_sweep, BatchOptions, Family, Registry,
    SweepOptions,
};

struct Args {
    manifest: Option<String>,
    filter: Option<String>,
    threads: usize,
    out: Option<String>,
    out_deterministic: Option<String>,
    check: Option<String>,
    write_expected: Option<String>,
    family: Option<String>,
    cold: bool,
    list: bool,
    list_families: bool,
    quiet: bool,
}

const USAGE: &str = "usage: nncps-batch [--manifest FILE.toml] [--filter SUBSTRING] \
                     [--threads N] [--out REPORT.json] [--out-deterministic REPORT.json] \
                     [--check EXPECTED.json] [--write-expected EXPECTED.json] \
                     [--family NAME|all] [--cold] [--list] [--list-families] [--quiet]";

/// Parses the CLI; `Ok(None)` means `--help` was requested.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        manifest: None,
        filter: None,
        threads: 0,
        out: None,
        out_deterministic: None,
        check: None,
        write_expected: None,
        family: None,
        cold: false,
        list: false,
        list_families: false,
        quiet: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--manifest" => args.manifest = Some(value("--manifest")?),
            "--filter" => args.filter = Some(value("--filter")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--out-deterministic" => args.out_deterministic = Some(value("--out-deterministic")?),
            "--check" => args.check = Some(value("--check")?),
            "--write-expected" => args.write_expected = Some(value("--write-expected")?),
            "--family" => args.family = Some(value("--family")?),
            "--cold" => args.cold = true,
            "--list" => args.list = true,
            "--list-families" => args.list_families = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Some(args))
}

/// The families visible to this invocation: the built-in declarations plus
/// any `[[family]]` tables of the manifest.
fn available_families(manifest: Option<&str>) -> Result<Vec<Family>, String> {
    let mut families = builtin_families();
    if let Some(path) = manifest {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {path}: {e}"))?;
        // A scenarios-only manifest contributes no families.
        families.extend(
            families_from_toml_str(&text, &Registry::builtin()).map_err(|e| e.to_string())?,
        );
    }
    Ok(families)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if args.list_families {
        let families = match available_families(args.manifest.as_deref()) {
            Ok(families) => families,
            Err(message) => {
                eprintln!("nncps-batch: {message}");
                return ExitCode::FAILURE;
            }
        };
        for family in &families {
            let counts = match family.expected_counts() {
                Some(c) => format!(
                    "{} certified / {} inconclusive",
                    c.certified, c.inconclusive
                ),
                None => "counts unpinned".to_string(),
            };
            println!(
                "{:<24} {:>4} members  expect {:<32} {}",
                family.name(),
                family.len(),
                counts,
                family.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    // --- family sweep mode ------------------------------------------------
    if let Some(selection) = &args.family {
        // Registry-only flags would be silently ignored here; refuse them so
        // a CI invocation never loses a gate it asked for.
        for (flag, given) in [
            ("--check", args.check.is_some()),
            ("--write-expected", args.write_expected.is_some()),
            ("--filter", args.filter.is_some()),
            ("--list", args.list),
        ] {
            if given {
                eprintln!(
                    "nncps-batch: {flag} applies to registry runs, not --family sweeps \
                     (family runs gate on pinned verdict counts instead)\n{USAGE}"
                );
                return ExitCode::FAILURE;
            }
        }
        let families = match available_families(args.manifest.as_deref()) {
            Ok(families) => families,
            Err(message) => {
                eprintln!("nncps-batch: {message}");
                return ExitCode::FAILURE;
            }
        };
        let selected: Vec<Family> = if selection == "all" {
            families
        } else {
            families
                .into_iter()
                .filter(|f| f.name() == selection)
                .collect()
        };
        if selected.is_empty() {
            eprintln!("nncps-batch: no family named `{selection}` (use --list-families)");
            return ExitCode::FAILURE;
        }
        let members: usize = selected.iter().map(Family::len).sum();
        if !args.quiet {
            eprintln!(
                "nncps-batch: sweeping {} famil{} ({} members, warm start {})...",
                selected.len(),
                if selected.len() == 1 { "y" } else { "ies" },
                members,
                if args.cold { "off" } else { "on" },
            );
        }
        let report = match run_sweep(
            &selected,
            &SweepOptions {
                threads: args.threads,
                warm_start: !args.cold,
            },
        ) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("nncps-batch: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !args.quiet {
            for rollup in &report.families {
                eprintln!(
                    "  {:<24} {:>4} members: {} certified / {} inconclusive ({})",
                    rollup.name,
                    rollup.members,
                    rollup.certified,
                    rollup.inconclusive,
                    if rollup.findings().is_empty() {
                        "as expected"
                    } else {
                        "DRIFT"
                    },
                );
            }
            let total: f64 = report
                .results
                .iter()
                .map(|r| r.wall_time_s + r.build_time_s)
                .sum();
            eprintln!("nncps-batch: sweep finished in {total:.2}s of scenario time");
        }
        if let Some(path) = &args.out_deterministic {
            if let Err(e) = std::fs::write(path, report.to_json(false)) {
                eprintln!("nncps-batch: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &args.out {
            if let Err(e) = std::fs::write(path, report.to_json(true)) {
                eprintln!("nncps-batch: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        } else if args.quiet || args.out_deterministic.is_some() {
            // Stay silent (the CI determinism probe diffs the files).
        } else {
            print!("{}", report.to_json(true));
        }
        return match report.check_family_counts() {
            Ok(()) => ExitCode::SUCCESS,
            Err(findings) => {
                for finding in &findings {
                    eprintln!("nncps-batch: DRIFT: {finding}");
                }
                ExitCode::FAILURE
            }
        };
    }

    // --- registry mode ----------------------------------------------------
    let registry = match &args.manifest {
        Some(path) => match Registry::from_toml_file(path) {
            Ok(registry) => registry,
            Err(e) => {
                eprintln!("nncps-batch: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Registry::builtin(),
    };
    let registry = match &args.filter {
        Some(pattern) => registry.filtered(pattern),
        None => registry,
    };
    if registry.is_empty() {
        eprintln!("nncps-batch: no scenarios selected");
        return ExitCode::FAILURE;
    }

    if args.list {
        for scenario in &registry {
            println!(
                "{:<24} {:<10} expect {:<13} {}",
                scenario.name(),
                scenario.plant().kind(),
                scenario.expected(),
                scenario.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    if !args.quiet {
        eprintln!(
            "nncps-batch: running {} scenario(s) over {} worker thread(s)...",
            registry.len(),
            if args.threads == 0 {
                "per-core".to_string()
            } else {
                args.threads.to_string()
            }
        );
    }
    let report = run_batch(
        &registry,
        &BatchOptions {
            threads: args.threads,
        },
    );
    if !args.quiet {
        for result in &report.results {
            eprintln!(
                "  {:<24} {:<13} ({}, {:.2}s) {}",
                result.name,
                result.verdict,
                if result.matches_expected {
                    "as expected"
                } else {
                    "UNEXPECTED"
                },
                result.wall_time_s + result.build_time_s,
                result.fingerprint(),
            );
        }
    }

    if let Some(path) = &args.write_expected {
        if let Err(e) = std::fs::write(path, report.expected_json()) {
            eprintln!("nncps-batch: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!("nncps-batch: baseline written to {path}");
        }
    }
    if let Some(path) = &args.out_deterministic {
        if let Err(e) = std::fs::write(path, report.to_json(false)) {
            eprintln!("nncps-batch: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.to_json(true)) {
            eprintln!("nncps-batch: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else if args.check.is_none()
        && args.write_expected.is_none()
        && args.out_deterministic.is_none()
    {
        print!("{}", report.to_json(true));
    }

    let mut failed = false;
    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("nncps-batch: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match report.check_against_expected(&baseline) {
            Ok(()) => {
                if !args.quiet {
                    eprintln!(
                        "nncps-batch: no drift against {path} ({} scenario(s))",
                        report.results.len()
                    );
                }
            }
            Err(findings) => {
                for finding in &findings {
                    eprintln!("nncps-batch: DRIFT: {finding}");
                }
                failed = true;
            }
        }
    }
    if !report.all_match_expected() {
        for result in report.results.iter().filter(|r| !r.matches_expected) {
            eprintln!(
                "nncps-batch: UNEXPECTED VERDICT: `{}` expected {}, got {}",
                result.name, result.expected, result.verdict
            );
        }
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
