//! `nncps-batch` — run the falsify→verify pipeline over a scenario registry
//! and emit a machine-readable JSON report.
//!
//! ```text
//! cargo run --release --bin nncps-batch                       # run + print report
//! cargo run --release --bin nncps-batch -- --list             # list scenarios
//! cargo run --release --bin nncps-batch -- --filter dubins    # name substring filter
//! cargo run --release --bin nncps-batch -- --manifest f.toml  # TOML registry
//! cargo run --release --bin nncps-batch -- --out report.json  # write full report
//! cargo run --release --bin nncps-batch -- --check SCENARIOS_expected.json
//! cargo run --release --bin nncps-batch -- --write-expected SCENARIOS_expected.json
//! ```
//!
//! `--check` exits nonzero on any verdict or witness-fingerprint drift
//! against the baseline; it is the CI scenario-regression gate.

use std::process::ExitCode;

use nncps_scenarios::{run_batch, BatchOptions, Registry};

struct Args {
    manifest: Option<String>,
    filter: Option<String>,
    threads: usize,
    out: Option<String>,
    check: Option<String>,
    write_expected: Option<String>,
    list: bool,
    quiet: bool,
}

const USAGE: &str = "usage: nncps-batch [--manifest FILE.toml] [--filter SUBSTRING] \
                     [--threads N] [--out REPORT.json] [--check EXPECTED.json] \
                     [--write-expected EXPECTED.json] [--list] [--quiet]";

/// Parses the CLI; `Ok(None)` means `--help` was requested.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        manifest: None,
        filter: None,
        threads: 0,
        out: None,
        check: None,
        write_expected: None,
        list: false,
        quiet: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--manifest" => args.manifest = Some(value("--manifest")?),
            "--filter" => args.filter = Some(value("--filter")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--write-expected" => args.write_expected = Some(value("--write-expected")?),
            "--list" => args.list = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let registry = match &args.manifest {
        Some(path) => match Registry::from_toml_file(path) {
            Ok(registry) => registry,
            Err(e) => {
                eprintln!("nncps-batch: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Registry::builtin(),
    };
    let registry = match &args.filter {
        Some(pattern) => registry.filtered(pattern),
        None => registry,
    };
    if registry.is_empty() {
        eprintln!("nncps-batch: no scenarios selected");
        return ExitCode::FAILURE;
    }

    if args.list {
        for scenario in &registry {
            println!(
                "{:<24} {:<10} expect {:<13} {}",
                scenario.name(),
                scenario.plant().kind(),
                scenario.expected(),
                scenario.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    if !args.quiet {
        eprintln!(
            "nncps-batch: running {} scenario(s) over {} worker thread(s)...",
            registry.len(),
            if args.threads == 0 {
                "per-core".to_string()
            } else {
                args.threads.to_string()
            }
        );
    }
    let report = run_batch(
        &registry,
        &BatchOptions {
            threads: args.threads,
        },
    );
    if !args.quiet {
        for result in &report.results {
            eprintln!(
                "  {:<24} {:<13} ({}, {:.2}s) {}",
                result.name,
                result.verdict,
                if result.matches_expected {
                    "as expected"
                } else {
                    "UNEXPECTED"
                },
                result.wall_time_s + result.build_time_s,
                result.fingerprint(),
            );
        }
    }

    if let Some(path) = &args.write_expected {
        if let Err(e) = std::fs::write(path, report.expected_json()) {
            eprintln!("nncps-batch: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!("nncps-batch: baseline written to {path}");
        }
    }
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.to_json(true)) {
            eprintln!("nncps-batch: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else if args.check.is_none() && args.write_expected.is_none() {
        print!("{}", report.to_json(true));
    }

    let mut failed = false;
    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("nncps-batch: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match report.check_against_expected(&baseline) {
            Ok(()) => {
                if !args.quiet {
                    eprintln!(
                        "nncps-batch: no drift against {path} ({} scenario(s))",
                        report.results.len()
                    );
                }
            }
            Err(findings) => {
                for finding in &findings {
                    eprintln!("nncps-batch: DRIFT: {finding}");
                }
                failed = true;
            }
        }
    }
    if !report.all_match_expected() {
        for result in report.results.iter().filter(|r| !r.matches_expected) {
            eprintln!(
                "nncps-batch: UNEXPECTED VERDICT: `{}` expected {}, got {}",
                result.name, result.expected, result.verdict
            );
        }
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
