//! `nncps-batch` — run the falsify→verify pipeline over a scenario registry
//! (or a generated scenario family) and emit a machine-readable JSON report.
//!
//! ```text
//! cargo run --release --bin nncps-batch                       # run + print report
//! cargo run --release --bin nncps-batch -- --list             # list scenarios
//! cargo run --release --bin nncps-batch -- --filter dubins    # name substring filter
//! cargo run --release --bin nncps-batch -- --manifest f.toml  # TOML registry
//! cargo run --release --bin nncps-batch -- --out report.json  # write full report
//! cargo run --release --bin nncps-batch -- --check SCENARIOS_expected.json
//! cargo run --release --bin nncps-batch -- --write-expected SCENARIOS_expected.json
//!
//! # Scenario-family sweeps (warm-start compilation caching shared across
//! # members; pass --cold to disable it):
//! cargo run --release --bin nncps-batch -- --list-families
//! cargo run --release --bin nncps-batch -- --family linear-ci-grid
//! cargo run --release --bin nncps-batch -- --family all --out sweep.json
//!
//! # Resource governance (per member; see ARCHITECTURE.md):
//! cargo run --release --bin nncps-batch -- --fuel 100000       # deterministic
//! cargo run --release --bin nncps-batch -- --deadline-ms 5000  # wall clock
//! ```
//!
//! `--check` exits nonzero on any verdict or witness-fingerprint drift
//! against the baseline; it is the CI scenario-regression gate.  Family runs
//! additionally gate on each family's pinned verdict *counts* (e.g.
//! "12 certified / 12 inconclusive") and exit nonzero on count drift.
//!
//! Exit codes are machine-readable so CI can tell failure modes apart:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean run, no drift, no crashes |
//! | 1    | usage or I/O error (bad flag, malformed manifest, unreadable baseline) |
//! | 2    | verdict/fingerprint/count drift against the pinned expectations |
//! | 3    | one or more members crashed (panicked); takes precedence over drift |

use std::process::ExitCode;

use nncps_scenarios::{
    builtin_families, families_from_toml_str, run_batch, run_sweep, BatchOptions, BatchReport,
    Family, Json, Registry, SweepOptions,
};

/// Clean run: every member completed, no drift.
const EXIT_OK: u8 = 0;
/// Usage or I/O error before/while producing the report.
const EXIT_USAGE: u8 = 1;
/// Verdict, fingerprint, or family-count drift against pinned expectations.
const EXIT_DRIFT: u8 = 2;
/// At least one member crashed (panicked); takes precedence over drift.
const EXIT_CRASHED: u8 = 3;

#[derive(Debug)]
struct Args {
    manifest: Option<String>,
    filter: Option<String>,
    threads: usize,
    fuel: Option<u64>,
    deadline_ms: Option<u64>,
    out: Option<String>,
    out_deterministic: Option<String>,
    check: Option<String>,
    write_expected: Option<String>,
    family: Option<String>,
    cold: bool,
    list: bool,
    list_families: bool,
    quiet: bool,
    connect: Option<String>,
    shutdown: bool,
}

const USAGE: &str = "usage: nncps-batch [--manifest FILE.toml] [--filter SUBSTRING] \
                     [--threads N] [--fuel INSTRUCTIONS] [--deadline-ms MS] \
                     [--out REPORT.json] [--out-deterministic REPORT.json] \
                     [--check EXPECTED.json] [--write-expected EXPECTED.json] \
                     [--family NAME|all] [--cold] [--list] [--list-families] [--quiet] \
                     [--connect ADDR] [--shutdown]";

/// Parses the CLI; `Ok(None)` means `--help` was requested.
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        manifest: None,
        filter: None,
        threads: 0,
        fuel: None,
        deadline_ms: None,
        out: None,
        out_deterministic: None,
        check: None,
        write_expected: None,
        family: None,
        cold: false,
        list: false,
        list_families: false,
        quiet: false,
        connect: None,
        shutdown: false,
    };
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--manifest" => args.manifest = Some(value("--manifest")?),
            "--filter" => args.filter = Some(value("--filter")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?
            }
            "--fuel" => {
                args.fuel = Some(
                    value("--fuel")?
                        .parse()
                        .map_err(|e| format!("invalid --fuel: {e}"))?,
                )
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("invalid --deadline-ms: {e}"))?,
                )
            }
            "--out" => args.out = Some(value("--out")?),
            "--out-deterministic" => args.out_deterministic = Some(value("--out-deterministic")?),
            "--check" => args.check = Some(value("--check")?),
            "--write-expected" => args.write_expected = Some(value("--write-expected")?),
            "--family" => args.family = Some(value("--family")?),
            "--cold" => args.cold = true,
            "--connect" => args.connect = Some(value("--connect")?),
            "--shutdown" => args.shutdown = true,
            "--list" => args.list = true,
            "--list-families" => args.list_families = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Some(args))
}

/// The families visible to this invocation: the built-in declarations plus
/// any `[[family]]` tables of the manifest.
fn available_families(manifest: Option<&str>) -> Result<Vec<Family>, String> {
    let mut families = builtin_families();
    if let Some(path) = manifest {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {path}: {e}"))?;
        // A scenarios-only manifest contributes no families.
        families.extend(
            families_from_toml_str(&text, &Registry::builtin()).map_err(|e| e.to_string())?,
        );
    }
    Ok(families)
}

/// Prints the crashed-member rows and folds the crash exit code into the
/// final verdict: crashes dominate drift, drift dominates success.
fn finish(report: &nncps_scenarios::BatchReport, drifted: bool) -> u8 {
    for crash in &report.crashed {
        eprintln!(
            "nncps-batch: CRASHED: member `{}` panicked: {}",
            crash.scenario, crash.payload
        );
    }
    if report.has_crashes() {
        EXIT_CRASHED
    } else if drifted {
        EXIT_DRIFT
    } else {
        EXIT_OK
    }
}

/// Client mode: submit the family selection to a resident `nncps-serve`
/// daemon instead of verifying in-process, stream its member events, and
/// apply the same drift/crash gates to the returned report.
fn run_client(args: &Args) -> Result<u8, String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let addr = args.connect.as_deref().expect("client mode has an address");
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone connection: {e}"))?;
    let mut reader = BufReader::new(stream);
    let read_event = |reader: &mut BufReader<TcpStream>| -> Result<Json, String> {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("connection to {addr} failed: {e}"))?;
        if n == 0 {
            return Err(format!(
                "server at {addr} closed the connection mid-request"
            ));
        }
        // The protocol is one event per '\n'-terminated line.  `read_line`
        // also returns a *partial* line when the connection dies mid-write;
        // parsing that prefix could silently accept a truncated event, so a
        // missing terminator is a hard protocol error.
        if !line.ends_with('\n') {
            return Err(format!(
                "torn protocol line from {addr} (connection lost after {n} bytes of an unterminated event)"
            ));
        }
        Json::parse(line.trim()).map_err(|e| format!("malformed server response: {e}"))
    };

    let mut code = EXIT_OK;
    if let Some(selection) = &args.family {
        let mut request = vec![
            ("op".to_string(), Json::from("submit")),
            ("family".to_string(), Json::from(selection.as_str())),
        ];
        if let Some(fuel) = args.fuel {
            request.push(("fuel".to_string(), Json::Number(fuel as f64)));
        }
        if let Some(ms) = args.deadline_ms {
            request.push(("deadline_ms".to_string(), Json::Number(ms as f64)));
        }
        writeln!(writer, "{}", Json::object(request).to_line())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let report = loop {
            let event = read_event(&mut reader)?;
            match event.get("event").and_then(Json::as_str) {
                Some("member") if !args.quiet => {
                    eprintln!(
                        "  {:<24} {:<13} ({:.2}s)",
                        event.get("name").and_then(Json::as_str).unwrap_or("?"),
                        event.get("verdict").and_then(Json::as_str).unwrap_or("?"),
                        event
                            .get("wall_time_s")
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0),
                    );
                }
                Some("crash") => eprintln!(
                    "nncps-batch: CRASHED: member `{}` panicked: {}",
                    event.get("name").and_then(Json::as_str).unwrap_or("?"),
                    event.get("payload").and_then(Json::as_str).unwrap_or(""),
                ),
                Some("error") => {
                    return Err(format!(
                        "server rejected the request: {}",
                        event.get("message").and_then(Json::as_str).unwrap_or("?")
                    ))
                }
                Some("done") => break event,
                // Unknown events from a newer server are skipped, matching
                // the warn-and-ignore stance of the baseline checker.
                _ => {}
            }
        };
        let deterministic = report
            .get("report")
            .and_then(Json::as_str)
            .ok_or("done event carries no report")?;
        let timed = report
            .get("report_timed")
            .and_then(Json::as_str)
            .unwrap_or(deterministic);
        if let Some(path) = &args.out_deterministic {
            std::fs::write(path, deterministic).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &args.out {
            std::fs::write(path, timed).map_err(|e| format!("cannot write {path}: {e}"))?;
        } else if !args.quiet && args.out_deterministic.is_none() {
            print!("{timed}");
        }
        // Re-apply the sweep gates locally: the daemon reports, the client
        // decides the exit code (same rules as an in-process sweep).
        let parsed = BatchReport::from_json(deterministic)
            .map_err(|e| format!("cannot parse server report: {e}"))?;
        let drifted = match parsed.check_family_counts() {
            Ok(()) => false,
            Err(findings) => {
                for finding in &findings {
                    eprintln!("nncps-batch: DRIFT: {finding}");
                }
                true
            }
        };
        code = finish(&parsed, drifted);
    }
    if args.shutdown {
        writeln!(
            writer,
            "{}",
            Json::object([("op".to_string(), Json::from("shutdown"))]).to_line()
        )
        .map_err(|e| format!("cannot send shutdown: {e}"))?;
        let event = read_event(&mut reader)?;
        if event.get("event").and_then(Json::as_str) != Some("bye") {
            return Err(format!("unexpected shutdown response: {event:?}"));
        }
        if !args.quiet {
            eprintln!("nncps-batch: server at {addr} acknowledged shutdown");
        }
    }
    Ok(code)
}

/// The whole run after argument parsing.  `Err` is a one-line diagnostic
/// reported by `main` with [`EXIT_USAGE`]; `Ok` carries the exit code.
fn run(args: &Args) -> Result<u8, String> {
    if args.connect.is_some() {
        // Server-side verification: only the sweep-shaped flags make sense.
        for (flag, given) in [
            ("--check", args.check.is_some()),
            ("--write-expected", args.write_expected.is_some()),
            ("--filter", args.filter.is_some()),
            ("--manifest", args.manifest.is_some()),
            ("--list", args.list),
            ("--list-families", args.list_families),
            ("--cold", args.cold),
        ] {
            if given {
                return Err(format!(
                    "{flag} does not apply to --connect (the server owns its \
                     catalogue and caches)\n{USAGE}"
                ));
            }
        }
        if args.family.is_none() && !args.shutdown {
            return Err(format!(
                "--connect needs --family NAME|all and/or --shutdown\n{USAGE}"
            ));
        }
        return run_client(args);
    }
    if args.shutdown {
        return Err(format!("--shutdown only applies with --connect\n{USAGE}"));
    }
    if args.list_families {
        let families = available_families(args.manifest.as_deref())?;
        for family in &families {
            let counts = match family.expected_counts() {
                Some(c) => format!(
                    "{} certified / {} inconclusive",
                    c.certified, c.inconclusive
                ),
                None => "counts unpinned".to_string(),
            };
            println!(
                "{:<24} {:>4} members  expect {:<32} {}",
                family.name(),
                family.len(),
                counts,
                family.description()
            );
        }
        return Ok(EXIT_OK);
    }

    // --- family sweep mode ------------------------------------------------
    if let Some(selection) = &args.family {
        // Registry-only flags would be silently ignored here; refuse them so
        // a CI invocation never loses a gate it asked for.
        for (flag, given) in [
            ("--check", args.check.is_some()),
            ("--write-expected", args.write_expected.is_some()),
            ("--filter", args.filter.is_some()),
            ("--list", args.list),
        ] {
            if given {
                return Err(format!(
                    "{flag} applies to registry runs, not --family sweeps \
                     (family runs gate on pinned verdict counts instead)\n{USAGE}"
                ));
            }
        }
        let families = available_families(args.manifest.as_deref())?;
        let selected: Vec<Family> = if selection == "all" {
            families
        } else {
            families
                .into_iter()
                .filter(|f| f.name() == selection)
                .collect()
        };
        if selected.is_empty() {
            return Err(format!(
                "no family named `{selection}` (use --list-families)"
            ));
        }
        let members: usize = selected.iter().map(Family::len).sum();
        if !args.quiet {
            eprintln!(
                "nncps-batch: sweeping {} famil{} ({} members, warm start {})...",
                selected.len(),
                if selected.len() == 1 { "y" } else { "ies" },
                members,
                if args.cold { "off" } else { "on" },
            );
        }
        let report = run_sweep(
            &selected,
            &SweepOptions {
                threads: args.threads,
                warm_start: !args.cold,
                fuel: args.fuel,
                deadline_ms: args.deadline_ms,
            },
        )
        .map_err(|e| e.to_string())?;
        if !args.quiet {
            for rollup in &report.families {
                eprintln!(
                    "  {:<24} {:>4} members: {} certified / {} inconclusive ({})",
                    rollup.name,
                    rollup.members,
                    rollup.certified,
                    rollup.inconclusive,
                    if rollup.findings().is_empty() {
                        "as expected"
                    } else {
                        "DRIFT"
                    },
                );
            }
            let total: f64 = report
                .results
                .iter()
                .map(|r| r.wall_time_s + r.build_time_s)
                .sum();
            eprintln!("nncps-batch: sweep finished in {total:.2}s of scenario time");
        }
        if let Some(path) = &args.out_deterministic {
            std::fs::write(path, report.to_json(false))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &args.out {
            std::fs::write(path, report.to_json(true))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        } else if args.quiet || args.out_deterministic.is_some() {
            // Stay silent (the CI determinism probe diffs the files).
        } else {
            print!("{}", report.to_json(true));
        }
        let drifted = match report.check_family_counts() {
            Ok(()) => false,
            Err(findings) => {
                for finding in &findings {
                    eprintln!("nncps-batch: DRIFT: {finding}");
                }
                true
            }
        };
        return Ok(finish(&report, drifted));
    }

    // --- registry mode ----------------------------------------------------
    let registry = match &args.manifest {
        Some(path) => Registry::from_toml_file(path).map_err(|e| e.to_string())?,
        None => Registry::builtin(),
    };
    let registry = match &args.filter {
        Some(pattern) => registry.filtered(pattern),
        None => registry,
    };
    if registry.is_empty() {
        return Err("no scenarios selected".to_string());
    }

    if args.list {
        for scenario in &registry {
            println!(
                "{:<24} {:<10} expect {:<13} {}",
                scenario.name(),
                scenario.plant().kind(),
                scenario.expected(),
                scenario.description()
            );
        }
        return Ok(EXIT_OK);
    }

    // Read the baseline before the (expensive) run so a bad path fails fast.
    let baseline = match &args.check {
        Some(path) => Some(
            std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline {path}: {e}"))?,
        ),
        None => None,
    };

    if !args.quiet {
        eprintln!(
            "nncps-batch: running {} scenario(s) over {} worker thread(s)...",
            registry.len(),
            if args.threads == 0 {
                "per-core".to_string()
            } else {
                args.threads.to_string()
            }
        );
    }
    let report = run_batch(
        &registry,
        &BatchOptions {
            threads: args.threads,
            fuel: args.fuel,
            deadline_ms: args.deadline_ms,
        },
    );
    if !args.quiet {
        for result in &report.results {
            eprintln!(
                "  {:<24} {:<13} ({}, {:.2}s) {}",
                result.name,
                result.verdict,
                if result.matches_expected {
                    "as expected"
                } else {
                    "UNEXPECTED"
                },
                result.wall_time_s + result.build_time_s,
                result.fingerprint(),
            );
        }
    }

    if let Some(path) = &args.write_expected {
        std::fs::write(path, report.expected_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("nncps-batch: baseline written to {path}");
        }
    }
    if let Some(path) = &args.out_deterministic {
        std::fs::write(path, report.to_json(false))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.out {
        std::fs::write(path, report.to_json(true))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    } else if args.check.is_none()
        && args.write_expected.is_none()
        && args.out_deterministic.is_none()
    {
        print!("{}", report.to_json(true));
    }

    let mut drifted = false;
    if let Some(baseline) = &baseline {
        match report.check_against_expected(baseline) {
            Ok(warnings) => {
                // Forward-compat: fields written by a newer tool are ignored
                // with a warning, never a hard failure.
                for warning in &warnings {
                    eprintln!("nncps-batch: warning: {warning}");
                }
                if !args.quiet {
                    eprintln!(
                        "nncps-batch: no drift against {} ({} scenario(s))",
                        args.check.as_deref().unwrap_or_default(),
                        report.results.len()
                    );
                }
            }
            Err(findings) => {
                for finding in &findings {
                    eprintln!("nncps-batch: DRIFT: {finding}");
                }
                drifted = true;
            }
        }
    }
    if !report.all_match_expected() {
        for result in report.results.iter().filter(|r| !r.matches_expected) {
            eprintln!(
                "nncps-batch: UNEXPECTED VERDICT: `{}` expected {}, got {}",
                result.name, result.expected, result.verdict
            );
        }
        drifted = true;
    }
    Ok(finish(&report, drifted))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("nncps-batch: {message}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("nncps-batch: {message}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Option<Args>, String> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    /// A unique scratch path that never existed (no file is created).
    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nncps-batch-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn governance_flags_parse_and_bad_values_are_diagnosed() {
        let args = parse(&["--fuel", "12345", "--deadline-ms", "250"])
            .unwrap()
            .unwrap();
        assert_eq!(args.fuel, Some(12345));
        assert_eq!(args.deadline_ms, Some(250));
        let err = parse(&["--fuel", "lots"]).unwrap_err();
        assert!(err.contains("invalid --fuel"), "{err}");
        let err = parse(&["--deadline-ms"]).unwrap_err();
        assert!(err.contains("--deadline-ms needs a value"), "{err}");
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn malformed_manifest_is_a_one_line_usage_error() {
        let path = scratch("bad-manifest.toml");
        std::fs::write(&path, "[[scenario]]\nthis is not toml = = =\n").unwrap();
        let args = parse(&["--manifest", path.to_str().unwrap()])
            .unwrap()
            .unwrap();
        let err = run(&args).unwrap_err();
        assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_manifest_file_is_a_usage_error() {
        let path = scratch("no-such-manifest.toml");
        let args = parse(&["--manifest", path.to_str().unwrap()])
            .unwrap()
            .unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains(path.to_str().unwrap()), "{err}");
    }

    #[test]
    fn unreadable_check_baseline_fails_fast_before_the_run() {
        let path = scratch("no-such-baseline.json");
        let args = parse(&["--check", path.to_str().unwrap(), "--quiet"])
            .unwrap()
            .unwrap();
        // The baseline is read before any scenario runs, so this returns
        // immediately even though the builtin registry would take minutes.
        let err = run(&args).unwrap_err();
        assert!(err.contains("cannot read baseline"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
    }

    #[test]
    fn unknown_family_and_conflicting_flags_are_usage_errors() {
        let args = parse(&["--family", "no-such-family"]).unwrap().unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains("no family named `no-such-family`"), "{err}");

        let args = parse(&["--family", "all", "--check", "x.json"])
            .unwrap()
            .unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.contains("--check applies to registry runs"), "{err}");
    }

    /// A fake `nncps-serve`: accepts one connection, reads the request line,
    /// plays back the given raw bytes, and drops the connection.
    fn fake_server(script: &'static [u8]) -> (String, std::thread::JoinHandle<()>) {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut request = String::new();
            BufReader::new(stream.try_clone().expect("clone"))
                .read_line(&mut request)
                .expect("read request");
            stream.write_all(script).expect("write script");
            stream.flush().expect("flush");
            // Dropping the stream sends FIN: the connection dies here.
        });
        (addr, handle)
    }

    fn connect_args(addr: &str) -> Args {
        parse(&["--connect", addr, "--family", "all", "--quiet"])
            .unwrap()
            .unwrap()
    }

    #[test]
    fn client_rejects_a_torn_protocol_line() {
        // One complete member event, then a line cut mid-JSON with no
        // terminating newline — the shape of a daemon killed mid-write.
        let (addr, server) = fake_server(
            b"{\"event\":\"member\",\"name\":\"m0\",\"verdict\":\"certified\",\"wall_time_s\":0}\n\
              {\"event\":\"member\",\"na",
        );
        let err = run_client(&connect_args(&addr)).unwrap_err();
        assert!(err.contains("torn protocol line"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
        server.join().unwrap();
    }

    #[test]
    fn client_reports_a_mid_stream_disconnect() {
        // Complete member events but no `done`: the daemon disconnects
        // mid-stream on a clean line boundary.
        let (addr, server) = fake_server(
            b"{\"event\":\"member\",\"name\":\"m0\",\"verdict\":\"certified\",\"wall_time_s\":0}\n\
              {\"event\":\"member\",\"name\":\"m1\",\"verdict\":\"inconclusive\",\"wall_time_s\":0}\n",
        );
        let err = run_client(&connect_args(&addr)).unwrap_err();
        assert!(err.contains("closed the connection mid-request"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err:?}");
        server.join().unwrap();
    }

    #[test]
    fn exit_codes_fold_crashes_over_drift() {
        use nncps_scenarios::{BatchReport, CrashedMember};
        let clean = BatchReport {
            threads: 1,
            results: Vec::new(),
            families: Vec::new(),
            crashed: Vec::new(),
        };
        assert_eq!(finish(&clean, false), EXIT_OK);
        assert_eq!(finish(&clean, true), EXIT_DRIFT);
        let crashed = BatchReport {
            crashed: vec![CrashedMember {
                scenario: "boom".to_string(),
                payload: "injected".to_string(),
            }],
            ..clean
        };
        assert_eq!(finish(&crashed, false), EXIT_CRASHED);
        assert_eq!(finish(&crashed, true), EXIT_CRASHED, "crash beats drift");
    }
}
